"""Command-line front-end: ``python -m repro.lint`` / ``repro lint``.

Exit codes follow convention: 0 clean, 1 violations found, 2 usage
error.  ``--format json`` emits a machine-readable document (stable
schema, see ``docs/determinism.md``) for CI and tooling; ``--format
github`` emits GitHub Actions ``::error`` workflow commands so findings
surface as inline PR annotations; the default text mode prints one
``path:line:col: CODE message`` per finding plus a summary line.

``--jobs N`` parallelizes the per-file phase over worker processes
(identical output at any N); ``--baseline FILE`` tolerates the
accepted findings recorded by ``--write-baseline FILE`` so a new rule
can gate CI before its pre-existing debt is burned down.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.engine import LintResult, lint_paths
from repro.lint.violation import ALL_CODES, RULES

__all__ = ["main", "build_parser", "add_lint_arguments", "run_lint"]

#: Schema version of the ``--format json`` document.
JSON_SCHEMA_VERSION = 1


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared with the ``repro lint`` subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "output format (json is the CI interface; github emits "
            "::error workflow commands for inline PR annotations)"
        ),
    )
    parser.add_argument(
        "--select",
        type=str,
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to enforce (default: all)",
    )
    parser.add_argument(
        "--allow-unseeded",
        action="append",
        default=[],
        metavar="PATH_SUFFIX",
        help=(
            "path suffix of a sanctioned entry point where REP001 "
            "(unseeded randomness) is permitted; repeatable"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the per-file analysis phase "
            "(default: 1; output is identical at any N)"
        ),
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default=None,
        metavar="FILE",
        help=(
            "baseline file of accepted findings (written by "
            "--write-baseline); matches are reported but do not fail "
            "the run"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        type=str,
        default=None,
        metavar="FILE",
        help=(
            "record the current unsuppressed findings as the accepted "
            "baseline and exit 0"
        ),
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print per-rule counts after the findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Project-specific determinism/picklability/cache-contract "
            "checker (rules REP001-REP010)."
        ),
    )
    add_lint_arguments(parser)
    return parser


def _parse_select(raw: str | None) -> frozenset[str] | None:
    if raw is None:
        return None
    codes = frozenset(c.strip().upper() for c in raw.split(",") if c.strip())
    unknown = codes - ALL_CODES
    if unknown:
        raise SystemExit(
            f"error: unknown rule code(s): {', '.join(sorted(unknown))}"
        )
    return codes


def _render_json(result: LintResult) -> str:
    document = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "violations": [v.to_dict() for v in result.violations],
        "suppressed": [v.to_dict() for v in result.suppressed],
        "baselined": [v.to_dict() for v in result.baselined],
        "counts": result.counts,
        "clean": not result.violations,
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _escape_workflow_data(value: str) -> str:
    """Escape message data for a GitHub Actions workflow command."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )


def _escape_workflow_property(value: str) -> str:
    """Escape a property value (also escapes ``:`` and ``,``)."""
    return (
        _escape_workflow_data(value)
        .replace(":", "%3A")
        .replace(",", "%2C")
    )


def _render_github(result: LintResult) -> str:
    """One ``::error`` workflow command per finding.

    GitHub renders these as inline annotations on the PR diff; the
    summary goes through as a ``::notice`` so the job log still states
    the totals.
    """
    lines = []
    for violation in result.violations:
        lines.append(
            "::error file={file},line={line},col={col},title={title}::"
            "{message}".format(
                file=_escape_workflow_property(violation.path),
                line=violation.line,
                col=violation.col,
                title=_escape_workflow_property(violation.code),
                message=_escape_workflow_data(violation.message),
            )
        )
    n = len(result.violations)
    lines.append(
        f"::notice::repro-lint: {n} violation{'s' if n != 1 else ''} "
        f"({len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined) "
        f"in {result.files_checked} files"
    )
    return "\n".join(lines)


def _render_text(result: LintResult, statistics: bool) -> str:
    lines = [v.render() for v in result.violations]
    if statistics and result.counts:
        lines.append("")
        for code, count in result.counts.items():
            lines.append(f"{code}: {count}")
    n = len(result.violations)
    summary = (
        f"{n} violation{'s' if n != 1 else ''} "
        f"({len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined) "
        f"in {result.files_checked} files"
    )
    lines.append(summary if lines else f"clean: {summary}")
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0
    baseline = None
    if args.baseline is not None and args.write_baseline is None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
    try:
        result = lint_paths(
            args.paths,
            select=_parse_select(args.select),
            allow_unseeded=args.allow_unseeded,
            jobs=max(1, args.jobs),
            baseline=baseline,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline is not None:
        count = write_baseline(args.write_baseline, result.violations)
        print(
            f"wrote {count} accepted finding"
            f"{'s' if count != 1 else ''} to {args.write_baseline}"
        )
        return 0
    if args.format == "json":
        print(_render_json(result))
    elif args.format == "github":
        print(_render_github(result))
    else:
        print(_render_text(result, args.statistics))
    return 1 if result.violations else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro.lint``."""
    try:
        return run_lint(build_parser().parse_args(argv))
    except BrokenPipeError:
        # Output was piped into e.g. `head`; exiting quietly is the
        # conventional CLI behaviour.
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
