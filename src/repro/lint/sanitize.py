"""Runtime lock-order sanitizer for the serving stack.

Static analysis (REP007) proves that shared state is *guarded*; it
cannot prove that two locks are always taken in the same order.  This
module closes that gap at runtime: :func:`make_lock` hands out
instrumented locks that record, per thread, the order in which lock
*roles* are acquired, and raise :class:`LockOrderError` the moment an
acquisition would establish the reverse of an order already observed —
the classic ABBA deadlock, caught on the first run that exercises both
paths, not on the unlucky interleaving that actually deadlocks.

The sanitizer is off by default: ``make_lock`` returns a plain
``threading.Lock`` unless ``REPRO_SANITIZE=1`` is set in the
environment, so production code pays nothing.  CI runs the serve/fleet
test subset in a dedicated lane with the sanitizer on and asserts zero
findings (see ``.github/workflows/ci.yml``).

Locks are named by *role* (``"scheduler-state"``, ``"gather-state"``)
and the order graph is kept per role, so an inversion between any two
instances of the same pair of roles is caught — including nesting two
locks of the *same* role, which this codebase never does on purpose.
"""

from __future__ import annotations

import os
import threading

__all__ = [
    "LockOrderError",
    "enabled",
    "findings",
    "make_lock",
    "reset",
]

_ENV_FLAG = "REPRO_SANITIZE"


class LockOrderError(RuntimeError):
    """Two lock roles were acquired in both orders (potential deadlock)."""


def enabled() -> bool:
    """Whether the sanitizer is active (``REPRO_SANITIZE=1``)."""
    return os.environ.get(_ENV_FLAG) == "1"


class _Registry:
    """Process-global acquisition-order graph and finding log."""

    def __init__(self) -> None:
        # Internal plain lock: guards the graph, never instrumented.
        self._mutex = threading.Lock()
        # (earlier_role, later_role) -> thread name that established it.
        self._order: dict[tuple[str, str], str] = {}
        self._findings: list[str] = []
        self._held = threading.local()

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def before_acquire(self, role: str) -> None:
        """Validate acquiring ``role`` against every lock already held."""
        stack = self._stack()
        if not stack:
            return
        thread = threading.current_thread().name
        problems: list[str] = []
        with self._mutex:
            for held in stack:
                if held == role:
                    problems.append(
                        f"thread '{thread}' acquiring lock role '{role}' "
                        f"while already holding '{held}': same-role "
                        "nesting is a self-deadlock (non-reentrant) or "
                        "an undeclared cross-instance ordering"
                    )
                    continue
                reverse = self._order.get((role, held))
                if reverse is not None:
                    problems.append(
                        f"lock-order inversion: thread '{thread}' "
                        f"acquires '{role}' while holding '{held}', but "
                        f"thread '{reverse}' previously acquired "
                        f"'{held}' while holding '{role}' — the two "
                        "paths deadlock if interleaved"
                    )
                else:
                    self._order.setdefault((held, role), thread)
            self._findings.extend(problems)
        if problems:
            raise LockOrderError("; ".join(problems))

    def did_acquire(self, role: str) -> None:
        self._stack().append(role)

    def did_release(self, role: str) -> None:
        stack = self._stack()
        # Release in any order is legal; drop the most recent entry.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == role:
                del stack[i]
                return

    def snapshot(self) -> tuple[str, ...]:
        with self._mutex:
            return tuple(self._findings)

    def clear(self) -> None:
        with self._mutex:
            self._order.clear()
            self._findings.clear()
        self._held = threading.local()


_REGISTRY = _Registry()


def findings() -> tuple[str, ...]:
    """Every lock-order problem observed since the last :func:`reset`."""
    return _REGISTRY.snapshot()


def reset() -> None:
    """Clear the order graph and findings (test isolation)."""
    _REGISTRY.clear()


class SanitizedLock:
    """A ``threading.Lock`` that reports its acquisitions by role."""

    def __init__(self, role: str, registry: _Registry | None = None):
        self.role = role
        self._registry = registry if registry is not None else _REGISTRY
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._registry.before_acquire(self.role)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._registry.did_acquire(self.role)
        return acquired

    def release(self) -> None:
        self._lock.release()
        self._registry.did_release(self.role)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"SanitizedLock(role={self.role!r})"


def make_lock(role: str) -> "threading.Lock | SanitizedLock":
    """A lock for ``role``: plain by default, instrumented under the
    sanitizer.

    Every lock guarding cross-thread state in the serving stack is
    created through this factory (it is also how the REP007 rule
    recognises a lock attribute), so flipping ``REPRO_SANITIZE=1``
    instruments the whole process without touching call sites.
    """
    if enabled():
        return SanitizedLock(role)
    return threading.Lock()
