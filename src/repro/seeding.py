"""Seed-discipline helpers: every stochastic path gets an explicit RNG.

The reproducibility contract (``docs/determinism.md``, rule REP001)
requires all randomness to flow from a seeded
:class:`numpy.random.Generator` supplied by the caller.  Public APIs
that historically defaulted to OS entropy now route through
:func:`ensure_rng`: passing ``None`` still works, but draws from a
*fixed* fallback seed (so results are at least reproducible) and emits
a :class:`DeprecationWarning` telling the caller to thread a generator
explicitly.
"""

from __future__ import annotations

import warnings

import numpy as np

__all__ = ["DEFAULT_FALLBACK_SEED", "ensure_rng", "fallback_rng"]

#: Seed of the deprecated ``rng=None`` fallback path.  Fixed (not OS
#: entropy) so even legacy call sites are bit-reproducible run to run.
DEFAULT_FALLBACK_SEED = 0


def fallback_rng(context: str) -> np.random.Generator:
    """Deterministic stand-in generator for a legacy ``rng=None`` call.

    Args:
        context: Dotted name of the API that was called without an
            ``rng`` (shown in the warning so the call site is findable).
    """
    warnings.warn(
        f"{context}: no rng/seed was provided; falling back to the fixed "
        f"seed {DEFAULT_FALLBACK_SEED}. Pass an explicit seeded "
        "np.random.Generator - the implicit fallback is deprecated and "
        "will become an error.",
        DeprecationWarning,
        stacklevel=3,
    )
    return np.random.default_rng(DEFAULT_FALLBACK_SEED)


def ensure_rng(
    rng: (
        np.random.Generator
        | np.random.BitGenerator
        | np.random.SeedSequence
        | int
        | None
    ),
    context: str,
) -> np.random.Generator:
    """Coerce an ``rng`` argument into a :class:`~numpy.random.Generator`.

    Accepts a ready generator (returned as-is), a
    :class:`~numpy.random.BitGenerator` (wrapped without reseeding, so
    its stream position is preserved), an integer seed or a
    :class:`~numpy.random.SeedSequence` (wrapped), or ``None`` — the
    deprecated path, which warns and uses the fixed fallback seed.

    Args:
        rng: The caller-supplied randomness, in any accepted form.
        context: Dotted API name for the deprecation warning.
    """
    if rng is None:
        return fallback_rng(context)
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.BitGenerator):
        return np.random.Generator(rng)
    return np.random.default_rng(rng)
