"""Fig. 3: decomposition of the IR-drop pattern and its CLD impact.

Section 3.2 decomposes the programming-voltage degradation of a
crossbar into a horizontal component (rescaling the learning step by
``beta``) and a vertical component (the diagonal matrix ``D`` that
skews convergence).  This driver regenerates the three degradation maps
of Fig. 3 for an all-LRS crossbar, quantifies the skew ``d_max/d_min``
as a function of the crossbar height (the paper's "d11/dnn > 2 when
n > 128" worst case), and translates the skew through the switching
nonlinearity into the effective update-magnitude ratio (the
"1/1000" observation).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import DeviceConfig
from repro.devices.switching import SwitchingModel
from repro.xbar.ir_drop import program_factors
from repro.xbar.nodal import CrossbarNetwork

__all__ = ["IRDropStudyResult", "run_fig3", "DEFAULT_HEIGHTS"]

DEFAULT_HEIGHTS = (32, 64, 128, 256)


@dataclasses.dataclass(frozen=True)
class IRDropStudyResult:
    """Fig. 3 maps and scaling diagnostics.

    Attributes:
        heights: Swept crossbar heights ``n``.
        d_skew: Worst-column ``d_max/d_min`` per height (all-LRS).
        update_ratio: Effective CLD update-magnitude ratio between the
            best- and worst-supplied cells of a column, through the
            switching nonlinearity (the paper's 1/1000 mechanism).
        beta: Mean horizontal factor per height.
        maps: Degradation maps of the largest height: dict with
            ``'horizontal'``, ``'vertical'``, ``'combined'`` factor
            matrices (Fig. 3 a/c/b respectively).
        ladder_vs_nodal_error: Max relative deviation of the ladder
            decomposition's delivered voltage against the full nodal
            solve, sampled on a small crossbar.
    """

    heights: np.ndarray
    d_skew: np.ndarray
    update_ratio: np.ndarray
    beta: np.ndarray
    maps: dict[str, np.ndarray]
    ladder_vs_nodal_error: float


def _validate_against_nodal(
    n: int, m: int, r_wire: float, device: DeviceConfig
) -> float:
    """Max relative delivered-voltage error, ladder vs nodal."""
    g = np.full((n, m), device.g_on)
    decomposition = program_factors(g, r_wire, device.v_set)
    network = CrossbarNetwork(g, r_wire)
    cells = np.array([(0, 0), (0, m - 1), (n // 2, m // 2), (n - 1, 0),
                      (n - 1, m - 1)])
    # One multi-RHS V/2 sweep instead of a scalar solve per probed cell.
    exact = network.program_voltages_batch(cells, device.v_set)
    worst = 0.0
    for idx, (row, col) in enumerate(cells):
        v_exact = exact.device_voltage[idx, row, col]
        v_ladder = device.v_set * decomposition.combined[row, col]
        worst = max(worst, abs(v_ladder - v_exact) / v_exact)
    return worst


def run_fig3(
    heights: tuple[int, ...] = DEFAULT_HEIGHTS,
    cols: int = 10,
    r_wire: float = 2.5,
    device: DeviceConfig | None = None,
) -> IRDropStudyResult:
    """Regenerate the Fig. 3 IR-drop study.

    Args:
        heights: Crossbar heights to sweep (all-LRS worst case).
        cols: Crossbar width (10 output classes in the paper).
        r_wire: Wire segment resistance (2.5 Ohm).
        device: Device parameters.

    Returns:
        An :class:`IRDropStudyResult`.
    """
    device = device if device is not None else DeviceConfig()
    model = SwitchingModel(device)
    d_skew, update_ratio, beta = [], [], []
    maps: dict[str, np.ndarray] = {}
    for n in heights:
        g = np.full((n, cols), device.g_on)
        decomposition = program_factors(g, r_wire, device.v_set)
        d_skew.append(float(decomposition.d_skew.max()))
        factors = decomposition.column_factors[:, 0]
        eff = model.nonlinearity_factor(device.v_set * factors, "set")
        update_ratio.append(float(eff.min() / eff.max()))
        beta.append(float(decomposition.beta.mean()))
        if n == max(heights):
            maps = {
                "horizontal": decomposition.row_factors,
                "vertical": decomposition.column_factors,
                "combined": decomposition.combined,
            }
    error = _validate_against_nodal(min(64, min(heights)), cols, r_wire,
                                    device)
    return IRDropStudyResult(
        heights=np.asarray(heights),
        d_skew=np.asarray(d_skew),
        update_ratio=np.asarray(update_ratio),
        beta=np.asarray(beta),
        maps=maps,
        ladder_vs_nodal_error=error,
    )
