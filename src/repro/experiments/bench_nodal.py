"""Nodal-solver benchmark: lu vs schur vs cg, plus MC trial throughput.

Two measurements back the solver subsystem of :mod:`repro.xbar.solvers`
(see ``docs/ir_drop.md``):

* **Size sweep** -- one cold read (setup + batched solve) per solver
  across square crossbar sizes, with every non-oracle result checked
  against the ``lu`` answer on the spot.  This is the serving-shaped
  cost: a freshly programmed state answering its first query batch.
* **Monte-Carlo throughput** -- the Fig. 2 column workload in nodal
  mode: the per-trial baseline builds a fresh sparse LU for every
  variation draw (the pre-subsystem cost), while the trial-stacked
  kernel runs preconditioned CG over the whole stack, factorising the
  *nominal* state exactly once.  The acceptance floor is a >= 3x
  trial-throughput win for the stacked kernel.

Shared by ``repro bench nodal`` (CLI) and
``benchmarks/test_nodal_throughput.py`` (which appends the entries to
the ``BENCH_nodal.json`` trajectory).  Timing is telemetry and never
feeds back into any result; the measured values themselves are
seed-deterministic.
"""

from __future__ import annotations

import dataclasses
import functools
import time
from typing import Sequence

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.config import NODAL_SOLVERS, DeviceConfig
from repro.devices.variation import lognormal_multipliers
from repro.runtime import map_trials, map_trials_batched
from repro.xbar.nodal import CrossbarNetwork
from repro.xbar.solvers import CG_CURRENT_RTOL, nodal_read_trial_stack

__all__ = [
    "NodalColumnConfig",
    "run_nodal_bench",
    "solver_size_sweep",
    "nodal_trial_throughput",
]

#: Square geometries of the size sweep (the ISSUE's {64^2, 128^2, 256^2}).
DEFAULT_SIZES = ((64, 64), (128, 128), (256, 256))


@dataclasses.dataclass(frozen=True)
class NodalColumnConfig:
    """The Fig. 2 column workload evaluated with full nodal IR-drop.

    Frozen so it can serve as a cache key (the benchmark itself never
    caches, but the trial kernels follow the experiment conventions).

    Attributes:
        sigma: Persistent lognormal variation level of each draw.
        n_devices: Column height (the paper's Fig. 2 uses 100).
        cols: Bit lines; 1 reproduces the paper's single column.
        r_wire: Wire segment resistance in Ohm.
        v_read: Word-line read voltage.
        target_current: Column training goal at full drive; sets the
            per-device nominal conductance.
    """

    sigma: float = 0.5
    n_devices: int = 100
    cols: int = 1
    r_wire: float = 2.5
    v_read: float = 1.0
    target_current: float = 1e-3

    @property
    def g_target(self) -> float:
        """Nominal per-device conductance hitting the target current."""
        return self.target_current / (self.n_devices * self.v_read)


def _trial_conductance(
    rng: np.random.Generator, cfg: NodalColumnConfig
) -> np.ndarray:
    """One fabrication draw of the column's conductance matrix."""
    device = DeviceConfig()
    mult = lognormal_multipliers(
        rng, cfg.sigma, (cfg.n_devices, cfg.cols)
    )
    return np.clip(cfg.g_target * mult, device.g_off, device.g_on)


def _nodal_column_trial(
    rng: np.random.Generator, cfg: NodalColumnConfig
) -> np.ndarray:
    """Per-trial baseline: fresh sparse LU for every variation draw."""
    g = _trial_conductance(rng, cfg)
    network = CrossbarNetwork(g, cfg.r_wire, solver="lu")
    return network.read(np.ones(cfg.n_devices), cfg.v_read)


def _nodal_column_trial_batch(
    rngs: Sequence[np.random.Generator],
    cfg: NodalColumnConfig,
    backend: ArrayBackend | str | None = None,
) -> np.ndarray:
    """Trial-stacked kernel: one nominal preconditioner, CG per stack.

    Each trial's conductance draw comes from that trial's own generator
    (same draws as :func:`_nodal_column_trial`), the stack is solved by
    :func:`~repro.xbar.solvers.nodal_read_trial_stack` with the nominal
    (unperturbed) state as the shared preconditioner, so no draw ever
    refactorises.  Accurate to the documented
    :data:`~repro.xbar.solvers.CG_CURRENT_RTOL` against the baseline.
    """
    bk = resolve_backend(backend)
    draws = [
        bk.asarray(_trial_conductance(rng, cfg)) for rng in rngs
    ]
    g_stack = bk.stack(draws, axis=0)
    nominal = bk.full((cfg.n_devices, cfg.cols), cfg.g_target)
    x = bk.ones((1, cfg.n_devices))
    currents = nodal_read_trial_stack(
        g_stack,
        x,
        cfg.r_wire,
        v_read=cfg.v_read,
        solver="cg",
        precond_g=nominal,
        backend=bk,
    )
    # (T, 1, cols) -> (T, cols); plain indexing works on every backend.
    return currents[:, 0, :]


def solver_size_sweep(
    sizes: Sequence[tuple[int, int]] = DEFAULT_SIZES,
    batch: int = 8,
    sigma: float = 0.5,
    r_wire: float = 2.5,
    seed: int = 0,
) -> list[dict]:
    """Cold read wall-clock per solver across crossbar sizes.

    Each entry times ``CrossbarNetwork(...).read_batch(x)`` -- setup
    plus a ``batch``-wide multi-RHS solve -- per solver on the same
    conductance state, and records each non-oracle solver's maximum
    relative column-current error against the ``lu`` answer.
    """
    device = DeviceConfig()
    g_nominal = 1.0 / (10.0 * device.r_on)
    results = []
    for n, m in sizes:
        rng = np.random.default_rng(seed)
        g = np.clip(
            g_nominal * lognormal_multipliers(rng, sigma, (n, m)),
            device.g_off,
            device.g_on,
        )
        x = rng.uniform(size=(batch, n))
        entry: dict = {"n": int(n), "m": int(m), "batch": int(batch)}
        reference = None
        for solver in NODAL_SOLVERS:
            network = CrossbarNetwork(g, r_wire, solver=solver)
            t0 = time.perf_counter()
            currents = network.read_batch(x)
            elapsed = time.perf_counter() - t0
            record = {"seconds": round(elapsed, 4)}
            if solver == "lu":
                reference = currents
            else:
                scale = float(np.max(np.abs(reference)))
                record["rel_error_vs_lu"] = float(
                    np.max(np.abs(currents - reference)) / scale
                )
            entry[solver] = record
        results.append(entry)
    return results


def nodal_trial_throughput(
    trials: int = 64,
    seed: int = 1234,
    cfg: NodalColumnConfig | None = None,
) -> dict:
    """Fig. 2 column MC throughput: per-trial splu vs stacked CG.

    Returns the wall-clock of both paths, the trial-throughput speedup,
    and the maximum relative disagreement between them (which must stay
    within :data:`~repro.xbar.solvers.CG_CURRENT_RTOL`).
    """
    cfg = cfg if cfg is not None else NodalColumnConfig()
    trial = functools.partial(_nodal_column_trial, cfg=cfg)
    batch_trial = functools.partial(_nodal_column_trial_batch, cfg=cfg)

    t0 = time.perf_counter()
    baseline = map_trials(trial, trials, seed=seed, jobs=1)
    baseline_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    stacked = map_trials_batched(batch_trial, trials, seed=seed, jobs=1)
    stacked_s = time.perf_counter() - t0

    scale = float(np.max(np.abs(baseline)))
    rel_error = float(np.max(np.abs(stacked - baseline)) / scale)
    speedup = baseline_s / stacked_s if stacked_s > 0 else float("inf")
    return {
        "trials": int(trials),
        "seed": int(seed),
        "n_devices": cfg.n_devices,
        "cols": cfg.cols,
        "r_wire": cfg.r_wire,
        "baseline_s": round(baseline_s, 4),
        "stacked_s": round(stacked_s, 4),
        "speedup": round(speedup, 3),
        "baseline_trials_per_s": round(trials / baseline_s, 1),
        "stacked_trials_per_s": round(trials / stacked_s, 1),
        "rel_error": rel_error,
        "rel_error_budget": CG_CURRENT_RTOL,
    }


def run_nodal_bench(
    trials: int = 64,
    sizes: Sequence[tuple[int, int]] = DEFAULT_SIZES,
    seed: int = 1234,
) -> dict:
    """The full nodal benchmark: size sweep + MC trial throughput."""
    return {
        "size_sweep": solver_size_sweep(sizes=sizes),
        "mc_throughput": nodal_trial_throughput(trials=trials, seed=seed),
    }
