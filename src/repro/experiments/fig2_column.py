"""Fig. 2: CLD vs OLD output discrepancy on a memristor column.

The paper's motivating experiment (Section 3.1): a column of 100
memristors is trained so that with every word line at 1 V the column
outputs 1 mA.  Over a 1000-run Monte-Carlo sweep of the variation
sigma, OLD's output discrepancy grows steadily -- it pre-calculates the
programming with no knowledge of each device's deviation -- while CLD
holds a small, flat discrepancy bounded only by its sensing resolution.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Sequence

import numpy as np

from repro.analysis.lognormal import (
    stacked_cycle_multipliers,
    stacked_parametric_thetas,
)
from repro.analysis.montecarlo import run_monte_carlo
from repro.backend import ArrayBackend, resolve_backend
from repro.circuits.adc import ADC
from repro.config import DeviceConfig, VariationConfig
from repro.devices.memristor import MemristorArray
from repro.devices.variation import lognormal_multipliers
from repro.experiments.common import ExperimentScale

__all__ = ["ColumnStudyResult", "ColumnTrialConfig", "run_fig2",
           "DEFAULT_SIGMAS"]

DEFAULT_SIGMAS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


@dataclasses.dataclass(frozen=True)
class ColumnStudyResult:
    """Discrepancy curves of the Fig. 2 study.

    Attributes:
        sigmas: Swept variation levels.
        old_discrepancy: Mean relative output error of OLD per sigma.
        cld_discrepancy: Mean relative output error of CLD per sigma.
        old_std: Trial standard deviation of the OLD error.
        cld_std: Trial standard deviation of the CLD error.
        n_trials: Monte-Carlo runs per point.
    """

    sigmas: np.ndarray
    old_discrepancy: np.ndarray
    cld_discrepancy: np.ndarray
    old_std: np.ndarray
    cld_std: np.ndarray
    n_trials: int

    def rows(self) -> list[tuple[float, float, float]]:
        """(sigma, OLD error, CLD error) rows for tabular printing."""
        return [
            (float(s), float(o), float(c))
            for s, o, c in zip(
                self.sigmas, self.old_discrepancy, self.cld_discrepancy
            )
        ]


@dataclasses.dataclass(frozen=True)
class ColumnTrialConfig:
    """Everything that determines one Fig. 2 column trial.

    Frozen so it can serve directly as the artifact-cache key of the
    Monte-Carlo sweep (see :func:`repro.runtime.cache.stable_key`).
    """

    sigma: float
    n_devices: int
    target_current: float
    v_read: float
    adc_bits: int
    cld_iterations: int


def _column_trial(
    rng: np.random.Generator, cfg: ColumnTrialConfig
) -> np.ndarray:
    """One fabrication draw: returns (old_error, cld_error)."""
    sigma = cfg.sigma
    n_devices = cfg.n_devices
    target_current = cfg.target_current
    v_read = cfg.v_read
    adc_bits = cfg.adc_bits
    cld_iterations = cfg.cld_iterations
    device = DeviceConfig()
    variation = VariationConfig(sigma=sigma)
    # Uniform target: every device carries an equal share.
    g_target = target_current / (n_devices * v_read)
    targets = np.full((n_devices, 1), g_target)

    # --- OLD: program once, blind to the variations. ---
    array = MemristorArray((n_devices, 1), device, variation, rng)
    achieved = array.program_conductance(targets)
    i_old = v_read * float(achieved.sum())

    # --- CLD: program-and-sense feedback on the same fabric. ---
    array.reset_to_hrs()
    adc = ADC(adc_bits, 2.0 * target_current)
    for _ in range(cld_iterations):
        i_sensed = float(adc.quantize(v_read * array.conductance.sum()))
        error = target_current - i_sensed
        if abs(error) < adc.lsb:
            break
        # Spread the correction uniformly across the column.
        delta_g = np.full(
            (n_devices, 1), error / (n_devices * v_read) * 0.5
        )
        array.update_conductance(delta_g)
    i_cld = v_read * float(array.conductance.sum())

    return np.array(
        [
            abs(i_old - target_current) / target_current,
            abs(i_cld - target_current) / target_current,
        ]
    )


def _column_trial_batch(
    rngs: Sequence[np.random.Generator],
    cfg: ColumnTrialConfig,
    backend: ArrayBackend | str | None = None,
) -> np.ndarray:
    """Trial-batched kernel for :func:`_column_trial`.

    Replays the scalar trial's draws per trial -- fabrication thetas,
    one programming cycle draw, then one cycle draw per *active* CLD
    iteration, each from that trial's own generator -- and performs all
    device math on ``(T, n, 1)`` stacks.  Every array operation here is
    elementwise or a trailing-axes reduction, both of which NumPy
    evaluates identically per trial slice, so the output is
    bit-identical to looping :func:`_column_trial` over the same
    generators.

    The kernel is backend-aware (see :mod:`repro.backend`): draws stay
    on the per-trial numpy generators regardless of backend, the stack
    math runs on ``backend``, and the ADC quantiser (host-side code)
    round-trips through numpy.  The default numpy path is the
    bit-identical reference.
    """
    bk = resolve_backend(backend)
    n_trials = len(rngs)
    device = DeviceConfig()
    variation = VariationConfig(sigma=cfg.sigma)
    g_off, g_range = device.g_off, device.g_range
    v_read = cfg.v_read
    target_current = cfg.target_current
    shape = (cfg.n_devices, 1)
    g_target = target_current / (cfg.n_devices * v_read)
    targets = bk.full(shape, g_target)

    # Fabrication: each trial's persistent thetas from its own stream.
    thetas = stacked_parametric_thetas(
        rngs, cfg.sigma, variation.distribution, shape, xp=bk
    )
    exp_thetas = bk.exp(thetas)

    # --- OLD: one open-loop programming event per trial. ---
    achieved = targets * exp_thetas
    if variation.sigma_cycle > 0:
        achieved = achieved * stacked_cycle_multipliers(
            rngs, variation.sigma_cycle, shape, xp=bk
        )
    achieved = bk.clip(achieved, g_off, device.g_on)
    state = bk.clip((achieved - g_off) / g_range, 0.0, 1.0)
    g_old = g_off + state * g_range
    i_old = v_read * bk.sum(g_old, axis=(1, 2))

    # --- CLD: program-and-sense feedback on the same fabric. ---
    state = bk.zeros((n_trials,) + shape)
    adc = ADC(cfg.adc_bits, 2.0 * target_current)
    # Trials leave the feedback loop independently: a converged trial
    # stops updating *and stops drawing cycle noise*, exactly like the
    # scalar trial's early break.  Convergence tracking stays host-side
    # (numpy bools) under every backend.
    active = np.asarray([True] * n_trials)
    for _ in range(cfg.cld_iterations):
        g = g_off + state * g_range
        i_sensed = bk.asarray(
            adc.quantize(bk.to_numpy(v_read * bk.sum(g, axis=(1, 2))))
        )
        error = target_current - i_sensed
        active &= ~(bk.to_numpy(bk.abs(error)) < adc.lsb)
        if not active.any():
            break
        delta = error / (cfg.n_devices * v_read) * 0.5
        step = delta[:, None, None] * exp_thetas
        if variation.sigma_cycle > 0:
            for t in np.nonzero(active)[0]:
                step[t] = step[t] * bk.asarray(lognormal_multipliers(
                    rngs[t], variation.sigma_cycle, shape
                ))
        g_new = bk.clip(g + step, g_off, device.g_on)
        state_new = bk.clip((g_new - g_off) / g_range, 0.0, 1.0)
        mask = bk.asarray(active, dtype=bool)
        state[mask] = state_new[mask]
    g_cld = g_off + state * g_range
    i_cld = v_read * bk.sum(g_cld, axis=(1, 2))

    return bk.stack(
        [
            bk.abs(i_old - target_current) / target_current,
            bk.abs(i_cld - target_current) / target_current,
        ],
        axis=1,
    )


def run_fig2(
    scale: ExperimentScale | None = None,
    sigmas: tuple[float, ...] = DEFAULT_SIGMAS,
    n_devices: int = 100,
    target_current: float = 1e-3,
    v_read: float = 1.0,
    adc_bits: int = 6,
    cld_iterations: int = 60,
) -> ColumnStudyResult:
    """Run the Fig. 2 Monte-Carlo column study.

    Args:
        scale: Controls the Monte-Carlo trial count.
        sigmas: Variation levels to sweep.
        n_devices: Column height (the paper uses 100).
        target_current: Training goal at full drive (1 mA).
        v_read: Word-line voltage (1 V).
        adc_bits: CLD sensing resolution.
        cld_iterations: Feedback-iteration budget for CLD.

    Returns:
        A :class:`ColumnStudyResult` with one point per sigma.
    """
    scale = scale if scale is not None else ExperimentScale()
    old_mean, cld_mean, old_std, cld_std = [], [], [], []
    for idx, sigma in enumerate(sigmas):
        trial_cfg = ColumnTrialConfig(
            sigma=float(sigma),
            n_devices=n_devices,
            target_current=target_current,
            v_read=v_read,
            adc_bits=adc_bits,
            cld_iterations=cld_iterations,
        )
        summary = run_monte_carlo(
            functools.partial(_column_trial, cfg=trial_cfg),
            trials=scale.column_mc_trials,
            seed=scale.seed + idx,
            cache_config=trial_cfg,
            label=f"fig2[sigma={sigma:g}]",
            batch_trial=functools.partial(_column_trial_batch, cfg=trial_cfg),
        )
        old_mean.append(summary.mean[0])
        cld_mean.append(summary.mean[1])
        old_std.append(summary.std[0])
        cld_std.append(summary.std[1])
    return ColumnStudyResult(
        sigmas=np.asarray(sigmas, dtype=float),
        old_discrepancy=np.asarray(old_mean),
        cld_discrepancy=np.asarray(cld_mean),
        old_std=np.asarray(old_std),
        cld_std=np.asarray(cld_std),
        n_trials=scale.column_mc_trials,
    )
