"""Experiment drivers: one per table/figure of the paper's evaluation.

============  ====================================================
Experiment    Driver
============  ====================================================
Fig. 2        :func:`repro.experiments.run_fig2` (column study)
Fig. 3        :func:`repro.experiments.run_fig3` (IR-drop maps)
Fig. 4        :func:`repro.experiments.run_fig4` (VAT trade-off)
Fig. 7        :func:`repro.experiments.run_fig7` (AMP effect)
Fig. 8        :func:`repro.experiments.run_fig8` (ADC resolution)
Fig. 9        :func:`repro.experiments.run_fig9` (redundancy)
Table 1       :func:`repro.experiments.run_table1` (sizes)
============  ====================================================
"""

from repro.experiments.common import DEFAULT_SEED, ExperimentScale, get_dataset
from repro.experiments.fig2_column import ColumnStudyResult, run_fig2
from repro.experiments.fig3_irdrop import IRDropStudyResult, run_fig3
from repro.experiments.fig4_vat_tradeoff import VATTradeoffResult, run_fig4
from repro.experiments.fig7_amp import AMPStudyResult, run_fig7
from repro.experiments.fig8_adc import ADCStudyResult, run_fig8
from repro.experiments.fig9_redundancy import (
    RedundancyStudyResult,
    run_fig9,
)
from repro.experiments.table1_sizes import SizeStudyResult, run_table1

__all__ = [
    "ADCStudyResult",
    "AMPStudyResult",
    "ColumnStudyResult",
    "DEFAULT_SEED",
    "ExperimentScale",
    "IRDropStudyResult",
    "RedundancyStudyResult",
    "SizeStudyResult",
    "VATTradeoffResult",
    "get_dataset",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_table1",
]
