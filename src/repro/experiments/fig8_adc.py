"""Fig. 8: ADC resolution vs test rate.

The ADC bounds two things at once: the accuracy of AMP's pre-test
measurements (a coarse converter cannot tell a good device from a bad
one, so the mapping decays toward random) and the precision of the
computation-path reads.  The paper sweeps 4 to 8 bits at several
variation levels and finds the test rate saturating at 6 bits; this
driver regenerates that sweep with Vortex's VAT+AMP flow (fixed gamma,
no redundancy, exactly the paper's "no redundancy is added in this
analysis" setup).
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from repro.analysis.montecarlo import run_monte_carlo
from repro.core.amp import RowMapping
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.greedy import greedy_mapping
from repro.core.old import OLDConfig, program_pair_open_loop
from repro.core.pretest import pretest_pair
from repro.core.sensitivity import mapping_order
from repro.core.swv import swv_pair
from repro.core.vat import VATConfig, train_vat
from repro.config import CrossbarConfig, SensingConfig, VariationConfig
from repro.data.datasets import N_CLASSES
from repro.experiments.common import ExperimentScale, get_dataset
from repro.xbar.mapping import WeightScaler

__all__ = ["ADCStudyResult", "run_fig8", "DEFAULT_BITS", "DEFAULT_SIGMAS"]

DEFAULT_BITS = (4, 5, 6, 7, 8)
DEFAULT_SIGMAS = (0.4, 0.6, 0.8)


@dataclasses.dataclass(frozen=True)
class ADCStudyResult:
    """Test-rate grid of the Fig. 8 sweep.

    Attributes:
        bits: Swept ADC resolutions.
        sigmas: Variation levels (one curve each).
        test_rate: Mean test rate, shape ``(len(sigmas), len(bits))``.
        gamma: Fixed VAT gamma used throughout.
    """

    bits: np.ndarray
    sigmas: np.ndarray
    test_rate: np.ndarray
    gamma: float

    def saturation_bits(self, tolerance: float = 0.01) -> list[int]:
        """Per-sigma smallest resolution within ``tolerance`` of max."""
        result = []
        for row in self.test_rate:
            peak = row.max()
            ok = np.flatnonzero(row >= peak - tolerance)
            result.append(int(self.bits[ok[0]]))
        return result


def _fig8_trial(
    rng: np.random.Generator,
    sigma: float,
    bits: tuple[int, ...],
    n: int,
    weights: np.ndarray,
    scaler: WeightScaler,
    x_test: np.ndarray,
    y_test: np.ndarray,
    x_mean: np.ndarray,
) -> np.ndarray:
    """One fabrication, measured at every ADC resolution.

    Module-level so the engine can dispatch trials to worker
    processes; the fabrication seed and every pre-test draw flow from
    the trial generator, so values are worker-count independent.
    """
    rates = np.zeros(len(bits))
    # One fabrication per trial, measured at every resolution.
    fab_seed = rng.integers(2**31)
    for bi, b in enumerate(bits):
        spec = HardwareSpec(
            variation=VariationConfig(sigma=sigma),
            crossbar=CrossbarConfig(
                rows=n, cols=N_CLASSES, r_wire=0.0
            ),
            sensing=SensingConfig(adc_bits=int(b)),
        )
        pair = build_pair(
            spec, scaler, np.random.default_rng(fab_seed)
        )
        pretest = pretest_pair(pair, spec.sensing, rng=rng)
        swv = swv_pair(
            weights, pretest.theta_pos, pretest.theta_neg, scaler
        )
        order = mapping_order(weights, x_mean)
        mapping = RowMapping(
            assignment=greedy_mapping(swv, order), n_physical=n
        )
        program_pair_open_loop(
            pair, mapping.weights_to_physical(weights), OLDConfig(),
            x_reference=mapping.inputs_to_physical(x_mean),
        )
        rates[bi] = hardware_test_rate(
            pair, x_test, y_test, spec.ir_mode,
            input_map=mapping.inputs_to_physical,
        )
    return rates


def run_fig8(
    scale: ExperimentScale | None = None,
    bits: tuple[int, ...] = DEFAULT_BITS,
    sigmas: tuple[float, ...] = DEFAULT_SIGMAS,
    gamma: float = 0.3,
    image_size: int = 14,
) -> ADCStudyResult:
    """Run the Fig. 8 ADC-resolution sweep.

    Args:
        scale: Sample counts, epochs, fabrication trials.
        bits: ADC resolutions to sweep.
        sigmas: Variation levels to sweep.
        gamma: Fixed VAT penalty scaling (the figure isolates the ADC
            effect, so gamma is held constant).
        image_size: Benchmark resolution.

    Returns:
        An :class:`ADCStudyResult`.
    """
    scale = scale if scale is not None else ExperimentScale()
    ds = get_dataset(scale, image_size)
    n = ds.n_features
    scaler = WeightScaler(1.0)
    x_mean = ds.x_train.mean(axis=0)

    rates = np.zeros((len(sigmas), len(bits)))
    for si, sigma in enumerate(sigmas):
        cfg = VATConfig(gamma=gamma, sigma=sigma, gdt=scale.gdt())
        outcome = train_vat(ds.x_train, ds.y_train, N_CLASSES, cfg)
        summary = run_monte_carlo(
            functools.partial(
                _fig8_trial,
                sigma=float(sigma), bits=tuple(int(b) for b in bits),
                n=n, weights=outcome.weights, scaler=scaler,
                x_test=ds.x_test, y_test=ds.y_test, x_mean=x_mean,
            ),
            trials=scale.mc_trials,
            seed=scale.seed + 80 + si,
            label=f"fig8[sigma={sigma:g}]",
        )
        rates[si] = summary.mean
    return ADCStudyResult(
        bits=np.asarray(bits),
        sigmas=np.asarray(sigmas, dtype=float),
        test_rate=rates,
        gamma=gamma,
    )
