"""Fig. 9: design redundancy vs test rate, and the headline comparison.

Section 5.3: extra physical rows widen AMP's pool of candidate
placements, and the benefit grows with the device variation (at
``sigma = 0.8`` the no-redundancy test rate is lowest and gains most).
The figure also carries the paper's headline: Vortex beats conventional
OLD and CLD (both without redundancy) by 29.6 and 26.4 percentage
points on average.  All schemes run under the same realistic hardware:
device variation, the differential ADC, and the paper's
programming-path IR-drop (Eq. 2 skew for CLD; deterministic
compensation for the open-loop schemes) -- inference reads are ideal,
matching the paper's convention.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.montecarlo import child_rngs
from repro.analysis.overhead import CostModel
from repro.core.amp import RowMapping
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.cld import CLDConfig, train_cld
from repro.core.greedy import greedy_mapping
from repro.core.old import OLDConfig, program_pair_open_loop, train_old
from repro.core.pretest import pretest_pair
from repro.core.self_tuning import SelfTuningConfig, tune_gamma
from repro.core.sensitivity import mapping_order
from repro.core.swv import swv_pair
from repro.config import CrossbarConfig, VariationConfig
from repro.data.datasets import N_CLASSES
from repro.experiments.common import ExperimentScale, get_dataset
from repro.xbar.mapping import WeightScaler

__all__ = ["RedundancyStudyResult", "run_fig9", "DEFAULT_REDUNDANCY",
           "DEFAULT_SIGMAS"]

DEFAULT_REDUNDANCY = (0, 25, 50, 100)
DEFAULT_SIGMAS = (0.4, 0.6, 0.8)


@dataclasses.dataclass
class RedundancyStudyResult:
    """Fig. 9 grid plus the headline averages.

    Attributes:
        redundancy: Extra-row counts ``p`` swept.
        sigmas: Variation levels swept.
        vortex_rate: Vortex test rates, ``(len(sigmas), len(p))``.
        old_rate: OLD (no redundancy) test rate per sigma.
        cld_rate: CLD (no redundancy) test rate per sigma.
        vortex_gain_over_old: Mean Vortex(p=0) - OLD, percentage points.
        vortex_gain_over_cld: Mean Vortex(p=0) - CLD, percentage points.
        area_overhead: Fractional macro-area overhead of each
            redundancy level (the figure's x-axis is literally
            "overhead"), shape ``(len(redundancy),)``.
    """

    redundancy: np.ndarray
    sigmas: np.ndarray
    vortex_rate: np.ndarray
    old_rate: np.ndarray
    cld_rate: np.ndarray
    vortex_gain_over_old: float
    vortex_gain_over_cld: float
    area_overhead: np.ndarray


def run_fig9(
    scale: ExperimentScale | None = None,
    redundancy: tuple[int, ...] = DEFAULT_REDUNDANCY,
    sigmas: tuple[float, ...] = DEFAULT_SIGMAS,
    image_size: int = 14,
    r_wire: float = 2.5,
) -> RedundancyStudyResult:
    """Run the Fig. 9 redundancy sweep.

    Args:
        scale: Sample counts, epochs, gamma grid, fabrication trials.
        redundancy: Extra physical row counts ``p``.
        sigmas: Variation levels.
        image_size: Benchmark resolution (14 for the quick suite, 28
            for the paper's 784-row setup).
        r_wire: Wire resistance shared by every scheme.

    Returns:
        A :class:`RedundancyStudyResult`.
    """
    scale = scale if scale is not None else ExperimentScale()
    ds = get_dataset(scale, image_size)
    n = ds.n_features
    scaler = WeightScaler(1.0)
    x_mean = ds.x_train.mean(axis=0)
    base_cfg = CrossbarConfig(rows=n, cols=N_CLASSES, r_wire=r_wire)

    # OLD's software stage is variation-blind: train once.  The open
    # loop compensates programming-time IR-drop deterministically and
    # reads are not IR-modelled (paper convention), so the read-side
    # corrections stay off.
    old_weights = train_old(
        ds.x_train, ds.y_train, N_CLASSES,
        OLDConfig(gdt=scale.gdt()),
    ).weights
    paper_programming = OLDConfig(
        compensate_ir_drop=False, digital_calibration=False
    )

    vortex = np.zeros((len(sigmas), len(redundancy)))
    old_rates = np.zeros(len(sigmas))
    cld_rates = np.zeros(len(sigmas))
    for si, sigma in enumerate(sigmas):
        spec = HardwareSpec(
            variation=VariationConfig(sigma=sigma),
            crossbar=base_cfg,
            ir_mode="ideal",
        )
        # Vortex's software stage: gamma self-tuned at this sigma.
        tune = tune_gamma(
            ds.x_train, ds.y_train, N_CLASSES, sigma,
            SelfTuningConfig(
                gammas=scale.gammas, n_injections=scale.n_injections,
                gdt=scale.gdt(),
            ),
            np.random.default_rng(scale.seed + 90 + si),
        )
        weights = tune.weights
        order = mapping_order(weights, x_mean)

        rngs = child_rngs(scale.seed + 900 + si, scale.mc_trials)
        for rng in rngs:
            # --- OLD baseline (p = 0). ---
            pair = build_pair(spec, scaler, rng)
            program_pair_open_loop(
                pair, old_weights, paper_programming, x_reference=x_mean
            )
            old_rates[si] += hardware_test_rate(
                pair, ds.x_test, ds.y_test, spec.ir_mode
            )
            # --- CLD baseline (p = 0). ---
            pair = build_pair(spec, scaler, rng)
            train_cld(
                pair, ds.x_train, ds.y_train, N_CLASSES,
                CLDConfig(ir_mode_read="ideal"), rng,
            )
            cld_rates[si] += hardware_test_rate(
                pair, ds.x_test, ds.y_test, spec.ir_mode
            )
            # --- Vortex at each redundancy level. ---
            for pi, extra in enumerate(redundancy):
                pair = build_pair(spec, scaler, rng, rows=n + extra)
                pretest = pretest_pair(pair, spec.sensing, rng=rng)
                swv = swv_pair(
                    weights, pretest.theta_pos, pretest.theta_neg, scaler
                )
                mapping = RowMapping(
                    assignment=greedy_mapping(swv, order),
                    n_physical=n + extra,
                )
                program_pair_open_loop(
                    pair, mapping.weights_to_physical(weights),
                    paper_programming,
                    x_reference=mapping.inputs_to_physical(x_mean),
                )
                vortex[si, pi] += hardware_test_rate(
                    pair, ds.x_test, ds.y_test, spec.ir_mode,
                    input_map=mapping.inputs_to_physical,
                )
    vortex /= scale.mc_trials
    old_rates /= scale.mc_trials
    cld_rates /= scale.mc_trials

    cost = CostModel()
    sensing_bits = HardwareSpec().sensing.adc_bits
    area_overhead = np.asarray([
        cost.area_overhead(base_cfg, sensing_bits, int(p))
        for p in redundancy
    ])

    p0 = vortex[:, 0]
    return RedundancyStudyResult(
        redundancy=np.asarray(redundancy),
        sigmas=np.asarray(sigmas, dtype=float),
        vortex_rate=vortex,
        old_rate=old_rates,
        cld_rate=cld_rates,
        vortex_gain_over_old=float(np.mean(p0 - old_rates) * 100.0),
        vortex_gain_over_cld=float(np.mean(p0 - cld_rates) * 100.0),
        area_overhead=area_overhead,
    )
