"""Fig. 9: design redundancy vs test rate, and the headline comparison.

Section 5.3: extra physical rows widen AMP's pool of candidate
placements, and the benefit grows with the device variation (at
``sigma = 0.8`` the no-redundancy test rate is lowest and gains most).
The figure also carries the paper's headline: Vortex beats conventional
OLD and CLD (both without redundancy) by 29.6 and 26.4 percentage
points on average.  All schemes run under the same realistic hardware:
device variation, the differential ADC, and the paper's
programming-path IR-drop (Eq. 2 skew for CLD; deterministic
compensation for the open-loop schemes) -- inference reads are ideal,
matching the paper's convention.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Sequence

import numpy as np

from repro.analysis.montecarlo import run_monte_carlo
from repro.analysis.overhead import CostModel
from repro.core.amp import RowMapping
from repro.core.base import (
    HardwareSpec,
    batched_hardware_test_rates,
    build_pair,
    hardware_test_rate,
    ideal_read_path,
)
from repro.core.cld import CLDConfig, train_cld
from repro.core.greedy import greedy_mapping
from repro.core.old import OLDConfig, program_pair_open_loop, train_old
from repro.core.pretest import pretest_pair
from repro.core.self_tuning import SelfTuningConfig, tune_gamma
from repro.core.sensitivity import mapping_order
from repro.core.swv import swv_pair
from repro.config import CrossbarConfig, VariationConfig
from repro.data.datasets import N_CLASSES
from repro.experiments.common import ExperimentScale, get_dataset
from repro.xbar.mapping import WeightScaler

__all__ = ["RedundancyStudyResult", "run_fig9", "DEFAULT_REDUNDANCY",
           "DEFAULT_SIGMAS"]

DEFAULT_REDUNDANCY = (0, 25, 50, 100)
DEFAULT_SIGMAS = (0.4, 0.6, 0.8)


@dataclasses.dataclass(frozen=True)
class RedundancyStudyResult:
    """Fig. 9 grid plus the headline averages.

    Attributes:
        redundancy: Extra-row counts ``p`` swept.
        sigmas: Variation levels swept.
        vortex_rate: Vortex test rates, ``(len(sigmas), len(p))``.
        old_rate: OLD (no redundancy) test rate per sigma.
        cld_rate: CLD (no redundancy) test rate per sigma.
        vortex_gain_over_old: Mean Vortex(p=0) - OLD, percentage points.
        vortex_gain_over_cld: Mean Vortex(p=0) - CLD, percentage points.
        area_overhead: Fractional macro-area overhead of each
            redundancy level (the figure's x-axis is literally
            "overhead"), shape ``(len(redundancy),)``.
    """

    redundancy: np.ndarray
    sigmas: np.ndarray
    vortex_rate: np.ndarray
    old_rate: np.ndarray
    cld_rate: np.ndarray
    vortex_gain_over_old: float
    vortex_gain_over_cld: float
    area_overhead: np.ndarray


def _fig9_trial(
    rng: np.random.Generator,
    spec: HardwareSpec,
    scaler: WeightScaler,
    old_weights: np.ndarray,
    vortex_weights: np.ndarray,
    order: np.ndarray,
    paper_programming: OLDConfig,
    redundancy: tuple[int, ...],
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    x_mean: np.ndarray,
) -> np.ndarray:
    """One fabrication draw: ``[OLD, CLD, Vortex(p) ...]`` rates.

    Module-level so the engine can dispatch fabrication trials to
    worker processes; every stochastic element flows from the trial
    generator, so values are worker-count independent.
    """
    n = spec.crossbar.rows
    rates = np.zeros(2 + len(redundancy))
    # --- OLD baseline (p = 0). ---
    pair = build_pair(spec, scaler, rng)
    program_pair_open_loop(
        pair, old_weights, paper_programming, x_reference=x_mean
    )
    rates[0] = hardware_test_rate(pair, x_test, y_test, spec.ir_mode)
    # --- CLD baseline (p = 0). ---
    pair = build_pair(spec, scaler, rng)
    train_cld(
        pair, x_train, y_train, N_CLASSES,
        CLDConfig(ir_mode_read="ideal"), rng,
    )
    rates[1] = hardware_test_rate(pair, x_test, y_test, spec.ir_mode)
    # --- Vortex at each redundancy level. ---
    for pi, extra in enumerate(redundancy):
        pair = build_pair(spec, scaler, rng, rows=n + extra)
        pretest = pretest_pair(pair, spec.sensing, rng=rng)
        swv = swv_pair(
            vortex_weights, pretest.theta_pos, pretest.theta_neg, scaler
        )
        mapping = RowMapping(
            assignment=greedy_mapping(swv, order),
            n_physical=n + extra,
        )
        program_pair_open_loop(
            pair, mapping.weights_to_physical(vortex_weights),
            paper_programming,
            x_reference=mapping.inputs_to_physical(x_mean),
        )
        rates[2 + pi] = hardware_test_rate(
            pair, x_test, y_test, spec.ir_mode,
            input_map=mapping.inputs_to_physical,
        )
    return rates


def _fig9_trial_batch(
    rngs: Sequence[np.random.Generator],
    spec: HardwareSpec,
    scaler: WeightScaler,
    old_weights: np.ndarray,
    vortex_weights: np.ndarray,
    order: np.ndarray,
    paper_programming: OLDConfig,
    redundancy: tuple[int, ...],
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    x_mean: np.ndarray,
) -> np.ndarray:
    """Trial-batched kernel for :func:`_fig9_trial`.

    Fabrication, open-loop programming, CLD training and AMP
    pre-testing stay per trial (they consume each trial's generator in
    the scalar order), while the forward evaluations -- which draw
    nothing -- are deferred and executed as one stacked hardware pass
    per scheme/redundancy slot.
    """
    if not ideal_read_path(spec):
        return np.stack([
            _fig9_trial(
                rng, spec, scaler, old_weights, vortex_weights, order,
                paper_programming, redundancy, x_train, y_train, x_test,
                y_test, x_mean,
            )
            for rng in rngs
        ])
    n = spec.crossbar.rows
    n_trials = len(rngs)
    cols = old_weights.shape[1]
    old_gp = np.empty((n_trials, n, cols))
    old_gn = np.empty_like(old_gp)
    cld_gp = np.empty_like(old_gp)
    cld_gn = np.empty_like(old_gp)
    vortex_gp = [
        np.empty((n_trials, n + extra, cols)) for extra in redundancy
    ]
    vortex_gn = [np.empty_like(g) for g in vortex_gp]
    vortex_assign = [
        np.empty((n_trials, n), dtype=int) for _ in redundancy
    ]
    for t, rng in enumerate(rngs):
        # --- OLD baseline (p = 0). ---
        pair = build_pair(spec, scaler, rng)
        program_pair_open_loop(
            pair, old_weights, paper_programming, x_reference=x_mean
        )
        old_gp[t] = pair.positive.conductance
        old_gn[t] = pair.negative.conductance
        # --- CLD baseline (p = 0). ---
        pair = build_pair(spec, scaler, rng)
        train_cld(
            pair, x_train, y_train, N_CLASSES,
            CLDConfig(ir_mode_read="ideal"), rng,
        )
        cld_gp[t] = pair.positive.conductance
        cld_gn[t] = pair.negative.conductance
        # --- Vortex at each redundancy level. ---
        for pi, extra in enumerate(redundancy):
            pair = build_pair(spec, scaler, rng, rows=n + extra)
            pretest = pretest_pair(pair, spec.sensing, rng=rng)
            swv = swv_pair(
                vortex_weights, pretest.theta_pos, pretest.theta_neg,
                scaler,
            )
            mapping = RowMapping(
                assignment=greedy_mapping(swv, order),
                n_physical=n + extra,
            )
            program_pair_open_loop(
                pair, mapping.weights_to_physical(vortex_weights),
                paper_programming,
                x_reference=mapping.inputs_to_physical(x_mean),
            )
            vortex_gp[pi][t] = pair.positive.conductance
            vortex_gn[pi][t] = pair.negative.conductance
            vortex_assign[pi][t] = mapping.assignment

    rates = np.zeros((n_trials, 2 + len(redundancy)))
    x = np.asarray(x_test, dtype=float)
    rates[:, 0] = batched_hardware_test_rates(
        old_gp, old_gn, x, y_test, spec, scaler
    )
    rates[:, 1] = batched_hardware_test_rates(
        cld_gp, cld_gn, x, y_test, spec, scaler
    )
    for pi, extra in enumerate(redundancy):
        x_stack = np.zeros((n_trials, x.shape[0], n + extra))
        for t in range(n_trials):
            x_stack[t][:, vortex_assign[pi][t]] = x
        rates[:, 2 + pi] = batched_hardware_test_rates(
            vortex_gp[pi], vortex_gn[pi], x_stack, y_test, spec, scaler
        )
    return rates


def run_fig9(
    scale: ExperimentScale | None = None,
    redundancy: tuple[int, ...] = DEFAULT_REDUNDANCY,
    sigmas: tuple[float, ...] = DEFAULT_SIGMAS,
    image_size: int = 14,
    r_wire: float = 2.5,
) -> RedundancyStudyResult:
    """Run the Fig. 9 redundancy sweep.

    Args:
        scale: Sample counts, epochs, gamma grid, fabrication trials.
        redundancy: Extra physical row counts ``p``.
        sigmas: Variation levels.
        image_size: Benchmark resolution (14 for the quick suite, 28
            for the paper's 784-row setup).
        r_wire: Wire resistance shared by every scheme.

    Returns:
        A :class:`RedundancyStudyResult`.
    """
    scale = scale if scale is not None else ExperimentScale()
    ds = get_dataset(scale, image_size)
    n = ds.n_features
    scaler = WeightScaler(1.0)
    x_mean = ds.x_train.mean(axis=0)
    base_cfg = CrossbarConfig(rows=n, cols=N_CLASSES, r_wire=r_wire)

    # OLD's software stage is variation-blind: train once.  The open
    # loop compensates programming-time IR-drop deterministically and
    # reads are not IR-modelled (paper convention), so the read-side
    # corrections stay off.
    old_weights = train_old(
        ds.x_train, ds.y_train, N_CLASSES,
        OLDConfig(gdt=scale.gdt()),
    ).weights
    paper_programming = OLDConfig(
        compensate_ir_drop=False, digital_calibration=False
    )

    vortex = np.zeros((len(sigmas), len(redundancy)))
    old_rates = np.zeros(len(sigmas))
    cld_rates = np.zeros(len(sigmas))
    for si, sigma in enumerate(sigmas):
        spec = HardwareSpec(
            variation=VariationConfig(sigma=sigma),
            crossbar=base_cfg,
            ir_mode="ideal",
        )
        # Vortex's software stage: gamma self-tuned at this sigma.
        tune = tune_gamma(
            ds.x_train, ds.y_train, N_CLASSES, sigma,
            SelfTuningConfig(
                gammas=scale.gammas, n_injections=scale.n_injections,
                gdt=scale.gdt(),
            ),
            np.random.default_rng(scale.seed + 90 + si),
        )
        weights = tune.weights
        order = mapping_order(weights, x_mean)

        summary = run_monte_carlo(
            functools.partial(
                _fig9_trial,
                spec=spec, scaler=scaler, old_weights=old_weights,
                vortex_weights=weights, order=order,
                paper_programming=paper_programming,
                redundancy=tuple(int(p) for p in redundancy),
                x_train=ds.x_train, y_train=ds.y_train,
                x_test=ds.x_test, y_test=ds.y_test, x_mean=x_mean,
            ),
            trials=scale.mc_trials,
            seed=scale.seed + 900 + si,
            label=f"fig9[sigma={sigma:g}]",
            batch_trial=functools.partial(
                _fig9_trial_batch,
                spec=spec, scaler=scaler, old_weights=old_weights,
                vortex_weights=weights, order=order,
                paper_programming=paper_programming,
                redundancy=tuple(int(p) for p in redundancy),
                x_train=ds.x_train, y_train=ds.y_train,
                x_test=ds.x_test, y_test=ds.y_test, x_mean=x_mean,
            ),
        )
        old_rates[si] = summary.mean[0]
        cld_rates[si] = summary.mean[1]
        vortex[si] = summary.mean[2:]

    cost = CostModel()
    sensing_bits = HardwareSpec().sensing.adc_bits
    area_overhead = np.asarray([
        cost.area_overhead(base_cfg, sensing_bits, int(p))
        for p in redundancy
    ])

    p0 = vortex[:, 0]
    return RedundancyStudyResult(
        redundancy=np.asarray(redundancy),
        sigmas=np.asarray(sigmas, dtype=float),
        vortex_rate=vortex,
        old_rate=old_rates,
        cld_rate=cld_rates,
        vortex_gain_over_old=float(np.mean(p0 - old_rates) * 100.0),
        vortex_gain_over_cld=float(np.mean(p0 - cld_rates) * 100.0),
        area_overhead=area_overhead,
    )
