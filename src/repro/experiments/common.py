"""Shared experiment configuration and dataset caching.

Every driver in :mod:`repro.experiments` accepts an
:class:`ExperimentScale` so the same code serves two purposes: the
``quick()`` preset keeps the benchmark suite runnable in minutes on a
laptop, while ``paper()`` reproduces the evaluation at the paper's
sample counts (4000 train / 2000 test, 1000-run Monte Carlo for the
column study).
"""

from __future__ import annotations

import dataclasses
import functools

from repro.data.datasets import Dataset, make_dataset
from repro.nn.gdt import GDTConfig
from repro.runtime.cache import get_cache

__all__ = ["ExperimentScale", "get_dataset", "DEFAULT_SEED"]

DEFAULT_SEED = 7


@dataclasses.dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for runtime.

    Attributes:
        n_train: Training samples rendered.
        n_test: Test samples rendered.
        mc_trials: Independent fabrication draws per configuration.
        column_mc_trials: Monte-Carlo runs for the Fig. 2 column study.
        epochs: Subgradient-trainer epochs.
        gammas: Gamma grid for sweeps and self-tuning.
        n_injections: Variation injections per validation estimate.
        seed: Master seed for data and fabrication.
    """

    n_train: int = 4000
    n_test: int = 2000
    mc_trials: int = 10
    column_mc_trials: int = 1000
    epochs: int = 300
    gammas: tuple[float, ...] = (
        0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0,
    )
    n_injections: int = 8
    seed: int = DEFAULT_SEED

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Benchmark-suite preset: minutes, preserves every trend."""
        return cls(
            n_train=1200,
            n_test=600,
            mc_trials=3,
            column_mc_trials=200,
            epochs=120,
            gammas=(0.0, 0.1, 0.2, 0.3, 0.5, 0.8),
            n_injections=6,
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Paper-fidelity preset (4000/2000 samples, 1000-run MC)."""
        return cls()

    def gdt(self) -> GDTConfig:
        """Trainer settings at this scale."""
        return GDTConfig(epochs=self.epochs)


@functools.lru_cache(maxsize=8)
def _cached_dataset(
    n_train: int, n_test: int, seed: int, image_size: int
) -> Dataset:
    # Disk layer below the in-process memo: dataset rendering is
    # deterministic in its arguments, so the artifact cache can hand a
    # cold process (or a fresh run) the rendered arrays directly.
    cache = get_cache()
    key = ""
    if cache is not None:
        key = cache.make_key(
            "dataset",
            {
                "n_train": n_train, "n_test": n_test, "seed": seed,
                "image_size": image_size,
            },
        )
        stored = cache.get_arrays(key)
        if stored is not None:
            return Dataset(
                x_train=stored["x_train"],
                y_train=stored["y_train"],
                x_test=stored["x_test"],
                y_test=stored["y_test"],
                image_size=image_size,
                with_bias=bool(stored["with_bias"]),
            )
    ds = make_dataset(n_train=n_train, n_test=n_test, seed=seed)
    if image_size != ds.image_size:
        ds = ds.undersampled(image_size)
    if cache is not None:
        cache.put_arrays(
            key,
            x_train=ds.x_train, y_train=ds.y_train,
            x_test=ds.x_test, y_test=ds.y_test,
            with_bias=ds.with_bias,
        )
    return ds


def get_dataset(scale: ExperimentScale, image_size: int = 28) -> Dataset:
    """Benchmark dataset at the requested scale (memoised in-process,
    persisted via the ambient artifact cache when one is configured).

    Args:
        scale: Sample counts and seed.
        image_size: Side length after under-sampling (28, 14 or 7).
    """
    return _cached_dataset(scale.n_train, scale.n_test, scale.seed, image_size)
