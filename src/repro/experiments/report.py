"""Combined evaluation report: run every experiment, render one text.

Used by the command-line interface (``python -m repro report``) and by
anyone who wants the whole evaluation regenerated in one call.  Each
section prints the same rows/series the paper's corresponding table or
figure reports.

Execution flows through :mod:`repro.runtime`: sections are cached in
the ambient artifact cache (keyed on experiment name, scale, image
size and package version), progress and wall times accumulate in the
ambient run log, and the report body embeds the log's *deterministic*
view -- what ran and what the cache served, never how fast -- so the
text is byte-identical at any ``--jobs`` value.
"""

from __future__ import annotations

import io
from typing import Callable

from repro.experiments.common import ExperimentScale
from repro.experiments.fig2_column import run_fig2
from repro.experiments.fig3_irdrop import run_fig3
from repro.experiments.fig4_vat_tradeoff import run_fig4
from repro.experiments.fig7_amp import run_fig7
from repro.experiments.fig8_adc import run_fig8
from repro.experiments.fig9_redundancy import run_fig9
from repro.experiments.table1_sizes import run_table1
from repro.runtime.cache import get_cache
from repro.runtime.telemetry import RunLog, current_run_log, use_run_log

__all__ = ["generate_report", "EXPERIMENT_RUNNERS"]


def _section_fig2(scale: ExperimentScale, image_size: int) -> str:
    result = run_fig2(scale)
    out = io.StringIO()
    out.write(f"({result.n_trials}-run Monte Carlo, 100-device column)\n")
    out.write(f"{'sigma':>6s} {'OLD err':>10s} {'CLD err':>10s}\n")
    for s, o, c in result.rows():
        out.write(f"{s:6.1f} {o:10.4f} {c:10.4f}\n")
    return out.getvalue()


def _section_fig3(scale: ExperimentScale, image_size: int) -> str:
    result = run_fig3()
    out = io.StringIO()
    out.write("(all-LRS worst case, r_wire = 2.5 Ohm)\n")
    out.write(f"{'rows':>6s} {'d skew':>8s} {'update ratio':>14s}\n")
    for n, s, u in zip(result.heights, result.d_skew,
                       result.update_ratio):
        out.write(f"{int(n):6d} {s:8.3f} {u:14.2e}\n")
    out.write(
        f"ladder vs nodal max rel error: "
        f"{result.ladder_vs_nodal_error:.2e}\n"
    )
    return out.getvalue()


def _section_fig4(scale: ExperimentScale, image_size: int) -> str:
    result = run_fig4(scale, image_size=image_size)
    out = io.StringIO()
    out.write(f"(sigma = {result.sigma})\n")
    out.write(
        f"{'gamma':>6s} {'train':>8s} {'test w/o var':>14s} "
        f"{'test w/ var':>13s}\n"
    )
    for g, tr, tc, ti in result.rows():
        out.write(f"{g:6.2f} {tr:8.3f} {tc:14.3f} {ti:13.3f}\n")
    out.write(f"best gamma: {result.best_gamma}\n")
    return out.getvalue()


def _section_fig7(scale: ExperimentScale, image_size: int) -> str:
    result = run_fig7(scale, image_size=image_size)
    out = io.StringIO()
    out.write(f"(sigma = {result.sigma})\n")
    out.write(
        f"{'gamma':>6s} {'train':>8s} {'before AMP':>12s} "
        f"{'after AMP':>11s}\n"
    )
    for g, tr, b, a in result.rows():
        out.write(f"{g:6.2f} {tr:8.3f} {b:12.3f} {a:11.3f}\n")
    out.write(
        f"optimal gamma: before {result.best_gamma_before}, "
        f"after {result.best_gamma_after}\n"
    )
    return out.getvalue()


def _section_fig8(scale: ExperimentScale, image_size: int) -> str:
    result = run_fig8(scale, image_size=image_size)
    out = io.StringIO()
    out.write(f"{'sigma':>6s} " + " ".join(
        f"{int(b)}-bit".rjust(8) for b in result.bits
    ) + "\n")
    for s, row in zip(result.sigmas, result.test_rate):
        out.write(f"{s:6.1f} " + " ".join(f"{r:8.3f}" for r in row) + "\n")
    out.write(f"saturation bits per sigma: {result.saturation_bits()}\n")
    return out.getvalue()


def _section_fig9(scale: ExperimentScale, image_size: int) -> str:
    result = run_fig9(scale, image_size=image_size)
    out = io.StringIO()
    out.write(
        f"{'sigma':>6s} {'OLD':>8s} {'CLD':>8s} | Vortex "
        + " ".join(f"p={int(p)}".rjust(8) for p in result.redundancy)
        + "\n"
    )
    for s, o, c, row in zip(result.sigmas, result.old_rate,
                            result.cld_rate, result.vortex_rate):
        out.write(
            f"{s:6.1f} {o:8.3f} {c:8.3f} |        "
            + " ".join(f"{v:8.3f}" for v in row) + "\n"
        )
    out.write(
        f"average Vortex gain: +{result.vortex_gain_over_old:.1f}pp vs "
        f"OLD, +{result.vortex_gain_over_cld:.1f}pp vs CLD\n"
    )
    return out.getvalue()


def _section_table1(scale: ExperimentScale, image_size: int) -> str:
    sizes = (28, 14, 7) if image_size == 28 else (14, 7)
    result = run_table1(scale, image_sizes=sizes)
    return result.table() + "\n"


EXPERIMENT_RUNNERS: dict[str, Callable[[ExperimentScale, int], str]] = {
    "fig2": _section_fig2,
    "fig3": _section_fig3,
    "fig4": _section_fig4,
    "fig7": _section_fig7,
    "fig8": _section_fig8,
    "fig9": _section_fig9,
    "table1": _section_table1,
}

_TITLES = {
    "fig2": "Fig. 2 - CLD vs OLD column-training discrepancy",
    "fig3": "Fig. 3 - IR-drop decomposition",
    "fig4": "Fig. 4 - VAT trade-off",
    "fig7": "Fig. 7 - effectiveness of AMP",
    "fig8": "Fig. 8 - ADC resolution vs test rate",
    "fig9": "Fig. 9 - design redundancy + headline comparison",
    "table1": "Table 1 - Vortex vs CLD at different crossbar sizes",
}


def _render_section(
    name: str, scale: ExperimentScale, image_size: int, log: RunLog
) -> str:
    """One section's body, via the artifact cache when possible."""
    cache = get_cache()
    key = ""
    if cache is not None:
        key = cache.make_key(
            "section",
            {"name": name, "scale": scale, "image_size": image_size},
        )
        with log.time_experiment(name) as record:
            record.cache_key = key
            stored = cache.get_json(key)
            if stored is not None:
                record.cache_hit = True
                return stored["text"]
            body = EXPERIMENT_RUNNERS[name](scale, image_size)
            cache.put_json(key, {"text": body})
        return body
    with log.time_experiment(name) as record:
        record.cache_key = key
        return EXPERIMENT_RUNNERS[name](scale, image_size)


def generate_report(
    scale: ExperimentScale | None = None,
    image_size: int = 14,
    experiments: tuple[str, ...] | None = None,
    run_log: RunLog | None = None,
) -> str:
    """Run the selected experiments and render one combined report.

    Args:
        scale: Experiment scale; the quick preset when omitted.
        image_size: Benchmark resolution for the network experiments.
        experiments: Subset of :data:`EXPERIMENT_RUNNERS` keys; all of
            them when omitted.
        run_log: Telemetry sink; falls back to the ambient run log, or
            a private one.  Its deterministic summary is embedded as
            the report's final section; wall times stay out of the
            body so the text is identical at any worker count.

    Returns:
        The report text.
    """
    scale = scale if scale is not None else ExperimentScale.quick()
    names = experiments if experiments is not None else tuple(
        EXPERIMENT_RUNNERS
    )
    unknown = set(names) - set(EXPERIMENT_RUNNERS)
    if unknown:
        raise ValueError(
            f"unknown experiments {sorted(unknown)}; available: "
            f"{sorted(EXPERIMENT_RUNNERS)}"
        )
    log = run_log if run_log is not None else current_run_log()
    if log is None:
        log = RunLog()
    out = io.StringIO()
    out.write("Vortex reproduction - evaluation report\n")
    out.write(
        f"(scale: {scale.n_train} train / {scale.n_test} test samples, "
        f"{scale.mc_trials} fabrication draws, {image_size}x{image_size} "
        "images)\n"
    )
    # Install the log as ambient so Monte-Carlo dispatches deep inside
    # the drivers record their batches into the same place.
    with use_run_log(log):
        for name in names:
            body = _render_section(name, scale, image_size, log)
            out.write(f"\n=== {_TITLES[name]} ===\n")
            out.write(body)
    out.write("\n=== run log ===\n")
    out.write(log.render_summary())
    out.write("\n")
    return out.getvalue()
