"""Table 1: Vortex vs CLD at different crossbar sizes.

Section 5.4: the benchmark images are sampled at 28x28, 14x14 and 7x7
(crossbar heights 784, 196, 49) with wire resistance 2.5 Ohm.  Three
schemes are compared:

* **CLD w/ IR-drop** -- the close-loop trainer with the delivered-
  voltage skew of Eq. 2 active; it collapses on the tallest crossbar.
* **Vortex w/ IR-drop** -- self-tuned VAT + AMP with 100 redundant
  rows (the paper's default); the open-loop pre-calculation
  compensates the (deterministic) programming-voltage degradation, so
  Vortex *improves* with crossbar size as the images gain features.
* **CLD w/o IR-drop** -- the idealised upper baseline.

Fidelity note: the paper models IR-drop as a *programming-path* effect
(Section 3.2 analyses the degradation of the programming voltage; the
inference read is taken at face value).  The drivers follow that
convention -- CLD's updates are skewed by the Eq. 2 factors while
reads are ideal.  The library's nodal/fixed-point read models cover
the read-path physics the paper leaves out; see the IR-model ablation
bench.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from repro.analysis.montecarlo import run_monte_carlo
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.cld import CLDConfig, train_cld
from repro.core.old import OLDConfig
from repro.core.vortex import VortexConfig, run_vortex
from repro.core.self_tuning import SelfTuningConfig
from repro.config import CrossbarConfig, VariationConfig
from repro.data.datasets import N_CLASSES
from repro.experiments.common import ExperimentScale, get_dataset
from repro.nn.metrics import rate_from_scores
from repro.xbar.mapping import WeightScaler

__all__ = ["SizeStudyResult", "run_table1", "DEFAULT_IMAGE_SIZES"]

DEFAULT_IMAGE_SIZES = (28, 14, 7)

SCHEMES = ("cld_ir", "vortex_ir", "cld_no_ir")


@dataclasses.dataclass(frozen=True)
class SizeStudyResult:
    """Table 1 grid: rates per scheme per crossbar size.

    Attributes:
        image_sizes: Benchmark resolutions swept.
        rows: Corresponding crossbar heights (size squared).
        test_rate: Mean test rates, keyed by scheme, each an array over
            sizes.  Schemes: ``cld_ir``, ``vortex_ir``, ``cld_no_ir``.
        training_rate: Mean training rates, same layout.
        r_wire: Wire resistance of the IR-drop rows.
        redundancy: Redundant rows given to Vortex.
    """

    image_sizes: np.ndarray
    rows: np.ndarray
    test_rate: dict[str, np.ndarray]
    training_rate: dict[str, np.ndarray]
    r_wire: float
    redundancy: int

    def table(self) -> str:
        """Render in the paper's Table 1 layout."""
        lines = []
        header = "rows            " + "".join(
            f"{int(r):>8d}" for r in self.rows
        )
        lines.append(header)
        names = {
            "cld_ir": "CLD w/ IR-drop",
            "vortex_ir": "Vortex w/ IR",
            "cld_no_ir": "CLD w/o IR",
        }
        lines.append("-- test rate (%) --")
        for key in SCHEMES:
            vals = "".join(
                f"{100 * v:8.1f}" for v in self.test_rate[key]
            )
            lines.append(f"{names[key]:<16s}{vals}")
        lines.append("-- training rate (%) --")
        for key in SCHEMES:
            vals = "".join(
                f"{100 * v:8.1f}" for v in self.training_rate[key]
            )
            lines.append(f"{names[key]:<16s}{vals}")
        return "\n".join(lines)


def _table1_trial(
    rng: np.random.Generator,
    spec_ir: HardwareSpec,
    spec_ideal: HardwareSpec,
    vortex_cfg: VortexConfig,
    scaler: WeightScaler,
    redundancy: int,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
) -> np.ndarray:
    """One fabrication draw at one crossbar size.

    Returns ``[train, test]`` rate pairs for the three schemes in
    :data:`SCHEMES` order, flattened to shape ``(6,)``.  Module-level
    so the engine can dispatch trials to worker processes.
    """
    n = spec_ir.crossbar.rows
    rates = np.zeros(6)
    # --- CLD with IR-drop (programming-path skew). ---
    pair = build_pair(spec_ir, scaler, rng)
    outcome = train_cld(
        pair, x_train, y_train, N_CLASSES,
        CLDConfig(ir_mode_read="ideal"), rng,
    )
    rates[0] = outcome.training_rate
    rates[1] = hardware_test_rate(pair, x_test, y_test, "ideal")
    # --- Vortex with IR-drop (+ redundancy). ---
    pair = build_pair(spec_ir, scaler, rng, rows=n + redundancy)
    result = run_vortex(pair, x_train, y_train, N_CLASSES, vortex_cfg, rng)
    rates[2] = rate_from_scores(x_train @ result.weights, y_train)
    rates[3] = result.test_rate(pair, x_test, y_test, "ideal")
    # --- CLD without IR-drop. ---
    pair = build_pair(spec_ideal, scaler, rng)
    outcome = train_cld(
        pair, x_train, y_train, N_CLASSES,
        CLDConfig(ir_drop_in_programming=False, ir_mode_read="ideal"),
        rng,
    )
    rates[4] = outcome.training_rate
    rates[5] = hardware_test_rate(pair, x_test, y_test, "ideal")
    return rates


def run_table1(
    scale: ExperimentScale | None = None,
    image_sizes: tuple[int, ...] = DEFAULT_IMAGE_SIZES,
    sigma: float = 0.6,
    r_wire: float = 2.5,
    redundancy: int = 100,
) -> SizeStudyResult:
    """Run the Table 1 crossbar-size comparison.

    Args:
        scale: Sample counts, epochs, gamma grid, fabrication trials.
        image_sizes: Benchmark resolutions (28, 14, 7 in the paper).
        sigma: Device variation (the paper's default 0.6).
        r_wire: Wire resistance for the IR-drop rows (2.5 Ohm).
        redundancy: Redundant rows for Vortex (the paper's default
            100).

    Returns:
        A :class:`SizeStudyResult`.
    """
    scale = scale if scale is not None else ExperimentScale()
    scaler = WeightScaler(1.0)
    test = {k: np.zeros(len(image_sizes)) for k in SCHEMES}
    train = {k: np.zeros(len(image_sizes)) for k in SCHEMES}
    rows = []
    for zi, size in enumerate(image_sizes):
        ds = get_dataset(scale, size)
        n = ds.n_features
        rows.append(n)
        variation = VariationConfig(sigma=sigma)
        # IR-drop lives in the programming path (paper convention):
        # the wire resistance skews CLD's update efficiencies, while
        # inference reads stay ideal for every scheme.
        spec_ir = HardwareSpec(
            variation=variation,
            crossbar=CrossbarConfig(rows=n, cols=N_CLASSES, r_wire=r_wire),
            ir_mode="ideal",
        )
        spec_ideal = HardwareSpec(
            variation=variation,
            crossbar=CrossbarConfig(rows=n, cols=N_CLASSES, r_wire=0.0),
            ir_mode="ideal",
        )
        vortex_cfg = VortexConfig(
            self_tuning=SelfTuningConfig(
                gammas=scale.gammas, n_injections=scale.n_injections,
                gdt=scale.gdt(),
            ),
            # The open-loop pre-calculation compensates programming-time
            # IR-drop deterministically (Section 3.2 / [10]); reads are
            # not IR-modelled, so read-side corrections stay off.
            programming=OLDConfig(
                compensate_ir_drop=False, digital_calibration=False,
            ),
            integrate=False,
        )
        summary = run_monte_carlo(
            functools.partial(
                _table1_trial,
                spec_ir=spec_ir, spec_ideal=spec_ideal,
                vortex_cfg=vortex_cfg, scaler=scaler,
                redundancy=redundancy,
                x_train=ds.x_train, y_train=ds.y_train,
                x_test=ds.x_test, y_test=ds.y_test,
            ),
            trials=scale.mc_trials,
            seed=scale.seed + 10 + zi,
            label=f"table1[{size}x{size}]",
        )
        for ki, k in enumerate(SCHEMES):
            train[k][zi] = summary.mean[2 * ki]
            test[k][zi] = summary.mean[2 * ki + 1]
    return SizeStudyResult(
        image_sizes=np.asarray(image_sizes),
        rows=np.asarray(rows),
        test_rate=test,
        training_rate=train,
        r_wire=r_wire,
        redundancy=redundancy,
    )
