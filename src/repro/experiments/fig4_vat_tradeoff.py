"""Fig. 4: VAT's trade-off between variation tolerance and training rate.

Sweeping the penalty scaling ``gamma`` from 0 to 1 (Eq. 10) at a fixed
device variation: the training rate falls as the constraint tightens;
the clean test rate (no variation) falls with it; but the test rate
*under* variation first rises to an interior peak -- the whole point of
VAT -- before the over-tight constraint erodes it again.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from repro.core.self_tuning import injected_rate
from repro.core.vat import VATConfig, train_vat
from repro.data.datasets import N_CLASSES
from repro.experiments.common import ExperimentScale, get_dataset
from repro.nn.gdt import GDTConfig
from repro.nn.metrics import rate_from_scores
from repro.runtime.executor import parallel_map

__all__ = ["VATTradeoffResult", "run_fig4"]


def _gamma_point(
    gamma: float,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    sigma: float,
    gdt: GDTConfig,
    n_injections: int,
    thetas: np.ndarray,
) -> np.ndarray:
    """One sweep point: (training, clean test, injected test) rates.

    Pure given its inputs (the injection draws are pre-drawn and
    shared), so the engine can run the gamma grid on worker processes
    with results bit-identical to the serial sweep.
    """
    cfg = VATConfig(gamma=float(gamma), sigma=sigma, gdt=gdt)
    outcome = train_vat(x_train, y_train, N_CLASSES, cfg)
    clean = rate_from_scores(x_test @ outcome.weights, y_test)
    injected = injected_rate(
        outcome.weights, x_test, y_test, sigma, n_injections,
        thetas=thetas,
    )
    return np.array([outcome.training_rate, clean, injected])


@dataclasses.dataclass(frozen=True)
class VATTradeoffResult:
    """Per-gamma rates of the Fig. 4 sweep.

    Attributes:
        gammas: Swept penalty scalings.
        training_rate: Rate on the training samples (clean weights).
        test_rate_clean: "Test rate (w/o variation)" of the paper.
        test_rate_injected: "Test rate (w/ variation)": mean over
            Monte-Carlo lognormal injections.
        sigma: Variation level of the injections and the penalty.
        best_gamma: Arg-max of the injected test rate.
    """

    gammas: np.ndarray
    training_rate: np.ndarray
    test_rate_clean: np.ndarray
    test_rate_injected: np.ndarray
    sigma: float
    best_gamma: float

    def rows(self) -> list[tuple[float, float, float, float]]:
        """(gamma, training, clean test, injected test) rows."""
        return [
            (float(g), float(tr), float(tc), float(ti))
            for g, tr, tc, ti in zip(
                self.gammas,
                self.training_rate,
                self.test_rate_clean,
                self.test_rate_injected,
            )
        ]


def run_fig4(
    scale: ExperimentScale | None = None,
    sigma: float = 0.6,
    image_size: int = 14,
) -> VATTradeoffResult:
    """Run the Fig. 4 gamma sweep.

    Args:
        scale: Sample counts, epochs, gamma grid, injection count.
        sigma: Device-variation level (pre-AMP, so the raw fabrication
            sigma).
        image_size: Benchmark resolution (14x14 keeps the sweep fast;
            pass 28 for the paper's full crossbar).

    Returns:
        A :class:`VATTradeoffResult`.
    """
    scale = scale if scale is not None else ExperimentScale()
    ds = get_dataset(scale, image_size)

    # Common injection draws across gammas (paired comparison).
    shape = (scale.n_injections, ds.n_features, N_CLASSES)
    thetas = np.random.default_rng(scale.seed + 41).standard_normal(shape)

    points = parallel_map(
        functools.partial(
            _gamma_point,
            x_train=ds.x_train, y_train=ds.y_train,
            x_test=ds.x_test, y_test=ds.y_test,
            sigma=sigma, gdt=scale.gdt(),
            n_injections=scale.n_injections, thetas=thetas,
        ),
        scale.gammas,
        label="fig4",
    )
    rates = np.asarray(points)
    gammas = np.asarray(scale.gammas, dtype=float)
    injected_arr = rates[:, 2]
    return VATTradeoffResult(
        gammas=gammas,
        training_rate=rates[:, 0],
        test_rate_clean=rates[:, 1],
        test_rate_injected=injected_arr,
        sigma=sigma,
        best_gamma=float(gammas[int(np.argmax(injected_arr))]),
    )
