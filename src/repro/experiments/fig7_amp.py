"""Fig. 7: effectiveness of AMP across the gamma sweep.

Repeats the Fig. 4 sweep on *hardware*: for every gamma, the trained
weights are programmed onto fabricated crossbar pairs twice -- once
with the identity row mapping ("before AMP") and once with the greedy
sensitivity-ordered mapping of Algorithm 1 ("after AMP").  AMP lifts
the whole test-rate curve and moves its peak to a smaller gamma,
because the effective variation the computation sees is reduced
(the paper reports the optimum moving from 0.4 to 0.2).
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Sequence

import numpy as np

from repro.analysis.montecarlo import run_monte_carlo
from repro.core.amp import RowMapping
from repro.core.base import (
    HardwareSpec,
    batched_hardware_test_rates,
    build_pair,
    hardware_test_rate,
    ideal_read_path,
)
from repro.core.greedy import greedy_mapping
from repro.core.old import OLDConfig, program_pair_open_loop
from repro.core.pretest import pretest_pair
from repro.core.sensitivity import mapping_order
from repro.core.swv import swv_pair
from repro.core.vat import VATConfig, train_vat
from repro.config import CrossbarConfig, VariationConfig
from repro.data.datasets import N_CLASSES
from repro.experiments.common import ExperimentScale, get_dataset
from repro.xbar.mapping import WeightScaler

__all__ = ["AMPStudyResult", "run_fig7"]


@dataclasses.dataclass(frozen=True)
class AMPStudyResult:
    """Per-gamma hardware rates before and after AMP.

    Attributes:
        gammas: Swept penalty scalings.
        training_rate: Software training rate per gamma.
        test_before_amp: Mean hardware test rate, identity mapping.
        test_after_amp: Mean hardware test rate, greedy AMP mapping.
        best_gamma_before: Peak location of the before-AMP curve.
        best_gamma_after: Peak location of the after-AMP curve.
        sigma: Fabrication variation level.
    """

    gammas: np.ndarray
    training_rate: np.ndarray
    test_before_amp: np.ndarray
    test_after_amp: np.ndarray
    best_gamma_before: float
    best_gamma_after: float
    sigma: float

    def rows(self) -> list[tuple[float, float, float, float]]:
        """(gamma, training, before-AMP, after-AMP) rows."""
        return [
            (float(g), float(tr), float(b), float(a))
            for g, tr, b, a in zip(
                self.gammas, self.training_rate,
                self.test_before_amp, self.test_after_amp,
            )
        ]


def _fig7_trial(
    rng: np.random.Generator,
    spec: HardwareSpec,
    scaler: WeightScaler,
    weights_per_gamma: list[np.ndarray],
    x_test: np.ndarray,
    y_test: np.ndarray,
    x_mean: np.ndarray,
) -> np.ndarray:
    """One fabrication draw: (before-AMP, after-AMP) rates per gamma.

    Module-level so the engine can dispatch fabrication trials to
    worker processes; the generator fully determines the fabricated
    fabric, so trial values are identical at any worker count.
    """
    n = spec.crossbar.rows
    identity = RowMapping(assignment=np.arange(n), n_physical=n)
    pair = build_pair(spec, scaler, rng)
    pretest = pretest_pair(pair, spec.sensing, rng=rng)
    rates = np.zeros((2, len(weights_per_gamma)))
    for gi, weights in enumerate(weights_per_gamma):
        # Before AMP: identity placement.
        program_pair_open_loop(pair, weights, OLDConfig())
        rates[0, gi] = hardware_test_rate(
            pair, x_test, y_test, spec.ir_mode,
            input_map=identity.inputs_to_physical,
        )
        # After AMP: greedy mapping on the measured fabric.
        swv = swv_pair(
            weights, pretest.theta_pos, pretest.theta_neg, scaler
        )
        order = mapping_order(weights, x_mean)
        mapping = RowMapping(
            assignment=greedy_mapping(swv, order), n_physical=n
        )
        program_pair_open_loop(
            pair, mapping.weights_to_physical(weights), OLDConfig(),
            x_reference=mapping.inputs_to_physical(x_mean),
        )
        rates[1, gi] = hardware_test_rate(
            pair, x_test, y_test, spec.ir_mode,
            input_map=mapping.inputs_to_physical,
        )
    return rates


def _fig7_trial_batch(
    rngs: Sequence[np.random.Generator],
    spec: HardwareSpec,
    scaler: WeightScaler,
    weights_per_gamma: list[np.ndarray],
    x_test: np.ndarray,
    y_test: np.ndarray,
    x_mean: np.ndarray,
) -> np.ndarray:
    """Trial-batched kernel for :func:`_fig7_trial`.

    The generator-consuming stages (fabrication, pre-test, open-loop
    programming) run per trial exactly as the scalar trial would --
    forward evaluations consume no randomness, so they can be deferred
    without disturbing any stream.  The deferred evaluations then run
    as one stacked hardware pass per (mapping kind, gamma) slot via
    :func:`batched_hardware_test_rates`, which is where the wall-clock
    of this experiment lives.
    """
    if not ideal_read_path(spec):
        return np.stack([
            _fig7_trial(
                rng, spec, scaler, weights_per_gamma, x_test, y_test,
                x_mean,
            )
            for rng in rngs
        ])
    n = spec.crossbar.rows
    identity = RowMapping(assignment=np.arange(n), n_physical=n)
    n_trials = len(rngs)
    n_gammas = len(weights_per_gamma)
    cols = weights_per_gamma[0].shape[1]
    gp = np.empty((2, n_gammas, n_trials, n, cols))
    gn = np.empty((2, n_gammas, n_trials, n, cols))
    assignments = np.empty((n_gammas, n_trials, n), dtype=int)
    for t, rng in enumerate(rngs):
        pair = build_pair(spec, scaler, rng)
        pretest = pretest_pair(pair, spec.sensing, rng=rng)
        for gi, weights in enumerate(weights_per_gamma):
            program_pair_open_loop(pair, weights, OLDConfig())
            gp[0, gi, t] = pair.positive.conductance
            gn[0, gi, t] = pair.negative.conductance
            swv = swv_pair(
                weights, pretest.theta_pos, pretest.theta_neg, scaler
            )
            order = mapping_order(weights, x_mean)
            mapping = RowMapping(
                assignment=greedy_mapping(swv, order), n_physical=n
            )
            program_pair_open_loop(
                pair, mapping.weights_to_physical(weights), OLDConfig(),
                x_reference=mapping.inputs_to_physical(x_mean),
            )
            gp[1, gi, t] = pair.positive.conductance
            gn[1, gi, t] = pair.negative.conductance
            assignments[gi, t] = mapping.assignment

    rates = np.zeros((n_trials, 2, n_gammas))
    x_identity = identity.inputs_to_physical(np.asarray(x_test, dtype=float))
    for gi in range(n_gammas):
        rates[:, 0, gi] = batched_hardware_test_rates(
            gp[0, gi], gn[0, gi], x_identity, y_test, spec, scaler
        )
        x_stack = np.zeros((n_trials,) + x_identity.shape)
        for t in range(n_trials):
            x_stack[t][:, assignments[gi, t]] = x_identity
        rates[:, 1, gi] = batched_hardware_test_rates(
            gp[1, gi], gn[1, gi], x_stack, y_test, spec, scaler
        )
    return rates


def run_fig7(
    scale: ExperimentScale | None = None,
    sigma: float = 0.6,
    image_size: int = 14,
    adc_bits: int = 6,
) -> AMPStudyResult:
    """Run the Fig. 7 AMP-effectiveness study.

    Args:
        scale: Sample counts, epochs, gamma grid, fabrication trials.
        sigma: Fabrication variation.
        image_size: Benchmark resolution.
        adc_bits: Pre-test and read ADC resolution.

    Returns:
        An :class:`AMPStudyResult`.
    """
    scale = scale if scale is not None else ExperimentScale()
    ds = get_dataset(scale, image_size)
    n = ds.n_features
    spec = HardwareSpec(
        variation=VariationConfig(sigma=sigma),
        crossbar=CrossbarConfig(rows=n, cols=N_CLASSES, r_wire=0.0),
    )
    spec = dataclasses.replace(
        spec, sensing=dataclasses.replace(spec.sensing, adc_bits=adc_bits)
    )
    scaler = WeightScaler(1.0)
    x_mean = ds.x_train.mean(axis=0)

    # Train once per gamma (shared across fabrication trials).
    outcomes = []
    for gamma in scale.gammas:
        cfg = VATConfig(gamma=float(gamma), sigma=sigma, gdt=scale.gdt())
        outcomes.append(train_vat(ds.x_train, ds.y_train, N_CLASSES, cfg))

    summary = run_monte_carlo(
        functools.partial(
            _fig7_trial,
            spec=spec, scaler=scaler,
            weights_per_gamma=[o.weights for o in outcomes],
            x_test=ds.x_test, y_test=ds.y_test, x_mean=x_mean,
        ),
        trials=scale.mc_trials,
        seed=scale.seed + 70,
        label="fig7",
        batch_trial=functools.partial(
            _fig7_trial_batch,
            spec=spec, scaler=scaler,
            weights_per_gamma=[o.weights for o in outcomes],
            x_test=ds.x_test, y_test=ds.y_test, x_mean=x_mean,
        ),
    )
    before = summary.mean[0]
    after = summary.mean[1]

    gammas = np.asarray(scale.gammas, dtype=float)
    return AMPStudyResult(
        gammas=gammas,
        training_rate=np.asarray([o.training_rate for o in outcomes]),
        test_before_amp=before,
        test_after_amp=after,
        best_gamma_before=float(gammas[int(np.argmax(before))]),
        best_gamma_after=float(gammas[int(np.argmax(after))]),
        sigma=sigma,
    )
