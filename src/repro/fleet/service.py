"""The fleet facade: programmed shard plan in, routed service out.

:class:`FleetService` is the horizontal counterpart of
:class:`~repro.serve.service.CrossbarService`: it restores every shard
of a :class:`~repro.fleet.plan.ProgrammedFleet` into ``replicas``
independent :class:`~repro.fleet.engine.ShardReplica` lanes, fronts
them with a :class:`~repro.fleet.router.FleetRouter`, and keeps them
healthy with a :class:`~repro.fleet.health.RollingReprogrammer`.  One
shared :class:`~repro.runtime.telemetry.RunLog` collects every lane's
request records (labelled ``shard<i>/r<j>``) and every health action,
so :meth:`stats` summarises the whole fleet.
"""

from __future__ import annotations

import concurrent.futures

import numpy as np

from repro.backend import ArrayBackend
from repro.fleet.engine import ShardReplica
from repro.fleet.health import RollingReprogrammer
from repro.fleet.plan import ProgrammedFleet
from repro.fleet.router import FleetRouter, ShardGroup
from repro.runtime.telemetry import (
    FleetEvent,
    RunLog,
    current_run_log,
)
from repro.serve.health import DriftPolicy
from repro.serve.protocol import Service, ServiceLifecycle

__all__ = ["FleetService", "Service"]


class FleetService(ServiceLifecycle):
    """Routed, replicated, drift-managed serving of a sharded layer.

    Implements the :class:`~repro.serve.protocol.Service` protocol.

    Args:
        fleet: The programmed shard plan to serve.
        replicas: Serving copies per shard (2 tolerates one failure or
            one rolling reprogram per shard with no capacity gap).
        ir_mode: Read-model override (the fleet's own mode when
            ``None``).
        policy: Drift policy shared by every replica monitor and the
            rolling reprogrammer.
        max_batch / max_queue / default_deadline_s / min_retry_after_s:
            Per-replica scheduler parameters.
        microbatch: Per-replica engine microbatch size.
        min_live: Quorum for rolling recovery (see
            :class:`~repro.fleet.health.RollingReprogrammer`).
        log: Telemetry sink; the ambient run log (or a private one)
            when omitted.
        backend: Array namespace every replica reads with; ``None``
            adopts the fleet plan's recorded serving default.
        nodal_solver: Solver every replica uses for ``ir_mode="nodal"``
            reads (``None`` keeps the hardware's own selection).
        label_prefix: Prepended to every replica's telemetry lane
            label (``repro.pipeline`` passes ``"layer<k>/"`` so one
            shared run log splits per layer).
    """

    def __init__(
        self,
        fleet: ProgrammedFleet,
        replicas: int = 2,
        ir_mode: str | None = None,
        policy: DriftPolicy | None = None,
        max_batch: int = 32,
        max_queue: int = 128,
        default_deadline_s: float | None = None,
        microbatch: int = 64,
        min_retry_after_s: float = 0.05,
        min_live: int = 1,
        log: RunLog | None = None,
        backend: ArrayBackend | str | None = None,
        nodal_solver: str | None = None,
        label_prefix: str = "",
    ):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.fleet = fleet
        self.replicas = int(replicas)
        self.label_prefix = str(label_prefix)
        self.policy = policy if policy is not None else DriftPolicy()
        ambient = current_run_log()
        self.log = log if log is not None else (
            ambient if ambient is not None else RunLog()
        )
        if backend is None:
            backend = getattr(fleet.config, "backend", None)
        self.backend = backend
        self.groups = [
            ShardGroup(
                i,
                [
                    ShardReplica(
                        shard,
                        shard_index=i,
                        replica_index=r,
                        ir_mode=ir_mode,
                        policy=self.policy,
                        max_batch=max_batch,
                        max_queue=max_queue,
                        default_deadline_s=default_deadline_s,
                        microbatch=microbatch,
                        min_retry_after_s=min_retry_after_s,
                        log=self.log,
                        backend=backend,
                        nodal_solver=nodal_solver,
                        name_prefix=self.label_prefix,
                    )
                    for r in range(self.replicas)
                ],
            )
            for i, shard in enumerate(fleet.shards)
        ]
        self.router = FleetRouter(self.groups, fleet.ranges)
        self.reprogrammer = RollingReprogrammer(
            self.groups,
            policy=self.policy,
            min_live=min_live,
            log=self.log,
        )

    # -- request path --------------------------------------------------
    def submit(
        self, x: np.ndarray, deadline_s: float | None = None
    ) -> concurrent.futures.Future:
        """Scatter one query (see :meth:`FleetRouter.submit`)."""
        return self.router.submit(x, deadline_s)

    def predict(
        self,
        x: np.ndarray,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Synchronous single-query scores."""
        return self.router.predict(x, deadline_s, timeout)

    def forward(
        self, x: np.ndarray, timeout: float | None = None
    ) -> np.ndarray:
        """Scatter-gather a whole batch of queries."""
        return self.router.forward(x, timeout)

    # -- health --------------------------------------------------------
    def kill_replica(self, shard: int, replica: int) -> None:
        """Crash one replica (testing/benchmark failure injection)."""
        self.groups[shard].replicas[replica].kill()

    def run_recovery_cycle(self) -> list[FleetEvent]:
        """One rolling scan-and-reprogram pass over the whole fleet."""
        return self.reprogrammer.run_cycle()

    def status(self) -> dict:
        """Deterministic per-shard fleet inventory.

        Replica discrepancies come from a probe replay, so a status
        call costs one hardware read per live replica.
        """
        shards = []
        for group, (start, stop) in zip(
            self.groups, self.fleet.ranges
        ):
            lanes = []
            for r in group.replicas:
                lanes.append({
                    "name": r.name,
                    "alive": r.alive,
                    "draining": r.draining,
                    "depth": r.depth,
                    "deadline_misses": r.scheduler.deadline_misses,
                    "discrepancy": (
                        round(r.monitor.discrepancy(), 6)
                        if r.alive else None
                    ),
                })
            shards.append({
                "shard": group.shard_index,
                "rows": [start, stop],
                "live": len(group.live_replicas),
                "replicas": lanes,
            })
        first = self.groups[0].replicas[0] if self.groups else None
        return {
            "n_shards": self.fleet.n_shards,
            "replicas_per_shard": self.replicas,
            "ir_mode": self.fleet.config.ir_mode,
            "backend": (
                first.engine.backend_name if first is not None else "numpy"
            ),
            "shards": shards,
        }

    def stats(self) -> dict:
        """Fleet-wide serving telemetry summary."""
        summary = self.log.serve_summary()
        labels = self.log.label_summary()
        if labels:
            summary["lanes"] = labels
        return summary

    # -- lifecycle (close/shutdown/context from ServiceLifecycle) ------
    def drain(self, timeout: float | None = None) -> None:
        """Drain every replica of every shard."""
        for group in self.groups:
            for replica in group.replicas:
                replica.shutdown(timeout)
