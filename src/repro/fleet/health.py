"""Rolling drift recovery: reprogram replicas without losing capacity.

Each replica carries its own :class:`~repro.serve.health.DriftMonitor`
against the shard's *programming-time* partial baseline, so a fleet
notices per-tile degradation exactly the way single-array serving
does.  What is new here is the repair choreography: a drifted replica
is taken out of rotation (``draining``), allowed to finish what it
accepted, reprogrammed back to the golden artifact, re-measured, and
only then returned to rotation — while its siblings keep the shard
serving.  A shard is never drained below ``min_live`` live replicas
(the quorum): if recovery would do that, the action is deferred and
recorded, to be retried on a later cycle.

The default repair (:func:`restore_replica`) is a noise-free restore
of the golden snapshot — the simulation counterpart of re-running the
open-loop programming sequence on the tile.  It is a module-level
function so fleet deployments that fan repair work out to worker
processes pass a picklable callable (rule REP002).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.fleet.engine import ShardReplica
from repro.fleet.router import ShardGroup
from repro.runtime.telemetry import (
    FleetEvent,
    RunLog,
    current_run_log,
)
from repro.serve.health import DriftPolicy

__all__ = ["RollingReprogrammer", "restore_replica"]


def restore_replica(replica: ShardReplica) -> None:
    """Reprogram a replica's hardware back to its golden artifact.

    Conductances, variation maps and defect maps all return to the
    snapshot state, so the post-repair probe discrepancy is exactly
    zero — recovery in the strongest sense the monitor can verify.
    """
    artifact = replica.artifact
    replica.engine.target.restore_conductances(
        artifact.g_pos, artifact.g_neg,
        theta_pos=artifact.theta_pos, theta_neg=artifact.theta_neg,
        defects_pos=artifact.defects_pos,
        defects_neg=artifact.defects_neg,
    )


class RollingReprogrammer:
    """Drain-reprogram-return cycles over a fleet's replica groups.

    Args:
        groups: The fleet's shard groups (shared with the router).
        policy: Drift policy; its ``threshold`` decides which replicas
            need recovery.
        min_live: Quorum — the minimum live replicas a shard must keep
            *while* one of its replicas is being recovered.
        reprogram_fn: Repair callable ``(replica) -> None``;
            :func:`restore_replica` when omitted.  Must be picklable
            for process-pool deployments (rule REP002).
        log: Telemetry sink for :class:`FleetEvent` records.
    """

    def __init__(
        self,
        groups: list[ShardGroup],
        policy: DriftPolicy | None = None,
        min_live: int = 1,
        reprogram_fn: Callable[[ShardReplica], None] | None = None,
        log: RunLog | None = None,
    ):
        if min_live < 1:
            raise ValueError(f"min_live must be >= 1, got {min_live}")
        self.groups = list(groups)
        self.policy = policy if policy is not None else DriftPolicy()
        self.min_live = int(min_live)
        self.reprogram_fn = (
            reprogram_fn if reprogram_fn is not None else restore_replica
        )
        ambient = current_run_log()
        self.log = log if log is not None else (
            ambient if ambient is not None else RunLog()
        )

    def scan(self) -> list[tuple[ShardGroup, ShardReplica, float]]:
        """Live replicas over the drift threshold, with their readings.

        Probe replays cost a hardware read per replica, so callers
        control the cadence (the fleet service runs a cycle on demand
        or from its status loop, not per batch).
        """
        drifted = []
        for group in self.groups:
            for replica in group.live_replicas:
                value = replica.monitor.discrepancy()
                if value > self.policy.threshold:
                    drifted.append((group, replica, value))
        return drifted

    def recover(
        self,
        group: ShardGroup,
        replica: ShardReplica,
        discrepancy: float,
    ) -> FleetEvent:
        """Recover one drifted replica, quorum permitting.

        Returns the recorded :class:`FleetEvent` — ``'reprogram'`` on
        success, ``'defer'`` when draining the replica would leave the
        shard below ``min_live`` live replicas.
        """
        if len(group.live_replicas) - 1 < self.min_live:
            return self.log.record_fleet(
                shard=replica.shard_index,
                replica=replica.replica_index,
                action="defer",
                discrepancy=discrepancy,
            )
        start = time.monotonic()
        replica.draining = True
        try:
            replica.drain()
            self.reprogram_fn(replica)
            recovered = replica.monitor.discrepancy()
            replica.restart_scheduler()
        finally:
            replica.draining = False
        return self.log.record_fleet(
            shard=replica.shard_index,
            replica=replica.replica_index,
            action="reprogram",
            seconds=time.monotonic() - start,
            discrepancy=discrepancy,
            recovered_discrepancy=recovered,
        )

    def run_cycle(self) -> list[FleetEvent]:
        """One rolling pass: scan everything, recover what quorum allows."""
        return [
            self.recover(group, replica, value)
            for group, replica, value in self.scan()
        ]
