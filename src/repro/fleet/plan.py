"""Shard planning: one large layer, many per-tile artifacts.

`repro.serve` deploys exactly one differential pair; anything wider
than a single array has nowhere to run.  The fleet layer starts here:
a :class:`FleetConfig` describes one large logical layer, and
:func:`program_fleet` fabricates it as a
:class:`~repro.xbar.tiling.TiledPair` (one shared
:class:`~repro.xbar.mapping.WeightScaler`, so the digital sum across
shards stays meaningful), programs it, and snapshots every tile as its
own :class:`~repro.serve.artifact.ProgrammedArray` — the same bundle
format single-array serving uses, so each shard restores, serves and
drift-monitors with the existing machinery.

Per-shard probe baselines are the tile's *partial* outputs
(:meth:`TiledPair.partial_matvec`), not the full layer outputs: a
shard replica can then judge its own health without seeing any other
shard's current.

:class:`ProgrammedFleet` is the persisted plan — the config plus the
ordered shard bundles — and can rebuild the equivalent single
``TiledPair`` (:meth:`ProgrammedFleet.build_tiled`), which is the
bit-identity reference the router is tested against.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import CrossbarConfig, DeviceConfig, VariationConfig
from repro.runtime.cache import ArtifactCache, stable_key
from repro.seeding import ensure_rng
from repro.serve.artifact import ProgrammedArray
from repro.xbar.crossbar import IR_MODES
from repro.xbar.mapping import WeightScaler
from repro.xbar.tiling import TiledPair, split_rows

__all__ = [
    "FleetConfig",
    "ProgrammedFleet",
    "fleet_key",
    "program_fleet",
]


@dataclasses.dataclass(frozen=True)
class FleetConfig:
    """Everything that determines a programmed fleet's hardware.

    Frozen and hashable so it doubles as the artifact cache key: any
    field change produces a different key (rule REP003).

    Attributes:
        n_rows: Logical input width of the sharded layer.
        cols: Output columns (shared by every shard).
        tile_rows: Rows per shard; the last shard may be smaller.
        sigma: Persistent device variation of the fabricated tiles.
        r_wire: Wire resistance per crossbar segment (ohm).
        seed: Master seed for fabrication and probe generation.
        ir_mode: Read-fidelity model every shard serves with.
        n_probes: Drift-monitor probe count (full-width probes; each
            shard keeps its row slice).
        backend: Default array namespace the fleet is served with (see
            :mod:`repro.backend`).  Programming always runs the
            bit-identical numpy reference path; this field only records
            the deployment intent ``fleet serve`` adopts when no
            explicit ``--backend`` is given.
    """

    n_rows: int
    cols: int = 10
    tile_rows: int = 32
    sigma: float = 0.15
    r_wire: float = 0.0
    seed: int = 0
    ir_mode: str = "ideal"
    n_probes: int = 16
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.n_rows < 1:
            raise ValueError(f"n_rows must be >= 1, got {self.n_rows}")
        if self.cols < 1:
            raise ValueError(f"cols must be >= 1, got {self.cols}")
        if self.tile_rows < 1:
            raise ValueError(
                f"tile_rows must be >= 1, got {self.tile_rows}"
            )
        if self.n_probes < 1:
            raise ValueError(
                f"n_probes must be >= 1, got {self.n_probes}"
            )
        if self.ir_mode not in IR_MODES:
            raise ValueError(
                f"ir_mode must be one of {IR_MODES}, got {self.ir_mode!r}"
            )

    @property
    def ranges(self) -> list[tuple[int, int]]:
        """Row range of every shard, in shard order."""
        return split_rows(self.n_rows, self.tile_rows)

    @property
    def n_shards(self) -> int:
        return len(self.ranges)


def fleet_key(config: FleetConfig, weights: np.ndarray) -> str:
    """Stable cache key of the fleet a (config, weights) pair produces."""
    return stable_key(
        "fleet", {"config": config, "weights": np.asarray(weights)}
    )


def _shard_key(manifest_key: str, shard_index: int) -> str:
    return stable_key(
        "fleet_shard", {"fleet": manifest_key, "shard": shard_index}
    )


@dataclasses.dataclass
class ProgrammedFleet:
    """A programmed shard plan: the config plus ordered tile bundles.

    Attributes:
        config: The :class:`FleetConfig` that produced the fleet.
        shards: One :class:`~repro.serve.artifact.ProgrammedArray` per
            row range, in shard order.  Shard ``i`` covers rows
            ``config.ranges[i]``; its probes/baseline are its row slice
            of the fleet probes and its *partial* contribution to the
            fleet baseline.
    """

    config: FleetConfig
    shards: list[ProgrammedArray]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def ranges(self) -> list[tuple[int, int]]:
        return self.config.ranges

    @property
    def shape(self) -> tuple[int, int]:
        return (self.config.n_rows, self.config.cols)

    def probes(self) -> np.ndarray:
        """Full-width probe inputs, reassembled from the shard slices."""
        return np.concatenate(
            [shard.probes for shard in self.shards], axis=1
        )

    def baseline(self) -> np.ndarray:
        """Programming-time fleet outputs: the reduced shard partials."""
        return TiledPair.reduce_partials(
            [shard.baseline for shard in self.shards]
        )

    # -- persistence ---------------------------------------------------
    def save(self, cache: ArtifactCache, key: str) -> str:
        """Persist the manifest and every shard bundle under ``key``."""
        for i, shard in enumerate(self.shards):
            shard.save(cache, _shard_key(key, i))
        cache.put_json(
            key,
            {
                "kind": "fleet_manifest",
                "config": dataclasses.asdict(self.config),
                "n_shards": self.n_shards,
            },
        )
        return key

    @classmethod
    def load(cls, cache: ArtifactCache, key: str) -> "ProgrammedFleet":
        """Load a fleet; raises ``KeyError`` when any piece is missing."""
        doc = cache.get_json(key)
        if doc is None or doc.get("kind") != "fleet_manifest":
            raise KeyError(f"no fleet manifest under key {key!r}")
        config = FleetConfig(**doc["config"])
        shards = [
            ProgrammedArray.load(cache, _shard_key(key, i))
            for i in range(int(doc["n_shards"]))
        ]
        return cls(config=config, shards=shards)

    # -- reconstruction ------------------------------------------------
    def build_tiled(self) -> TiledPair:
        """The single-machine equivalent of the fleet, bit-for-bit.

        Rebuilds one :class:`~repro.xbar.tiling.TiledPair` whose tiles
        adopt the shard snapshots noise-free.  Its ``matvec`` is the
        ground truth the scatter-gather router must reproduce exactly.
        """
        c = self.config
        first = self.shards[0]
        device = DeviceConfig(**first.metadata["device"])
        tiled = TiledPair(
            WeightScaler(first.w_max, device),
            n_rows=c.n_rows,
            cols=c.cols,
            tile_rows=c.tile_rows,
            config=CrossbarConfig(
                rows=c.n_rows, cols=c.cols, r_wire=c.r_wire
            ),
            device=device,
            variation=VariationConfig(sigma=0.0, sigma_cycle=0.0),
            rng=np.random.default_rng(0),
        )
        for tile, shard in zip(tiled.tiles, self.shards):
            tile.restore_conductances(
                shard.g_pos, shard.g_neg,
                theta_pos=shard.theta_pos, theta_neg=shard.theta_neg,
                defects_pos=shard.defects_pos,
                defects_neg=shard.defects_neg,
            )
        if c.ir_mode == "reference":
            tiled.set_reference_input(
                np.concatenate([s.x_mean for s in self.shards])
            )
        return tiled


def program_fleet(
    config: FleetConfig,
    weights: np.ndarray,
    probes: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> ProgrammedFleet:
    """Fabricate, program and snapshot a sharded layer per ``config``.

    Args:
        config: Geometry, variation and serving parameters.
        weights: Signed logical weights ``(n_rows, cols)``.  Normalised
            globally (one peak across the whole layer), exactly as
            :meth:`TiledPair.program_weights` does.
        probes: Optional drift probes ``(p, n_rows)`` in [0, 1]; drawn
            uniformly from ``rng`` when omitted.
        rng: Randomness override; derived from ``config.seed`` when
            omitted, so identical inputs produce identical fleets.
    """
    w = np.asarray(weights, dtype=float)
    if w.shape != (config.n_rows, config.cols):
        raise ValueError(
            f"weights shape {w.shape} != fleet shape "
            f"{(config.n_rows, config.cols)}"
        )
    if rng is None:
        rng = np.random.default_rng(config.seed)
    rng = ensure_rng(rng, "repro.fleet.plan.program_fleet")

    device = DeviceConfig()
    scaler = WeightScaler(1.0, device)
    tiled = TiledPair(
        scaler,
        n_rows=config.n_rows,
        cols=config.cols,
        tile_rows=config.tile_rows,
        config=CrossbarConfig(
            rows=config.n_rows, cols=config.cols, r_wire=config.r_wire
        ),
        device=device,
        variation=VariationConfig(sigma=config.sigma),
        rng=rng,
    )
    tiled.program_weights(w)

    if probes is None:
        probes = rng.random((config.n_probes, config.n_rows))
    probes = np.asarray(probes, dtype=float)
    if probes.ndim != 2 or probes.shape[1] != config.n_rows:
        raise ValueError(
            f"probes must be (p, {config.n_rows}), got {probes.shape}"
        )

    if config.ir_mode == "reference":
        tiled.set_reference_input(probes.mean(axis=0))
    partials = tiled.partial_matvec(probes, config.ir_mode)

    peak = float(np.max(np.abs(w)))
    w_norm = w * (scaler.w_max / peak) if peak > 0 else w

    shards = []
    for i, ((start, stop), tile) in enumerate(
        zip(config.ranges, tiled.tiles)
    ):
        rows = stop - start
        shards.append(
            ProgrammedArray(
                scheme="fleet",
                w_max=scaler.w_max,
                ir_mode=config.ir_mode,
                weights=w_norm[start:stop].copy(),
                assignment=np.arange(rows),
                n_physical=rows,
                g_pos=tile.positive.array.conductance.copy(),
                g_neg=tile.negative.array.conductance.copy(),
                theta_pos=tile.positive.array.theta.copy(),
                theta_neg=tile.negative.array.theta.copy(),
                defects_pos=tile.positive.array.defects.copy(),
                defects_neg=tile.negative.array.defects.copy(),
                x_mean=probes[:, start:stop].mean(axis=0),
                probes=probes[:, start:stop].copy(),
                baseline=np.asarray(partials[i], dtype=float),
                digital_gains=None,
                metadata={
                    "crossbar": dataclasses.asdict(tile.config),
                    "device": dataclasses.asdict(tile.positive.device),
                    "adc": None,
                    "scheme": "fleet",
                    "sigma": config.sigma,
                    "seed": config.seed,
                    "shard_index": i,
                    "row_start": start,
                    "row_stop": stop,
                    "n_shards": config.n_shards,
                },
            )
        )
    return ProgrammedFleet(config=config, shards=shards)
