"""Shard replicas: one scheduler-backed engine per programmed tile.

A :class:`ShardReplica` is the fleet's unit of failure and repair —
its own restored hardware, its own batching worker thread, its own
drift monitor.  Replicas of the same shard restore the same golden
:class:`~repro.serve.artifact.ProgrammedArray`, so *which* replica
answers a query cannot change the answer; the router is free to pick
by load alone.

Two liveness flags separate the failure modes the fleet handles:

* ``alive`` — cleared by :meth:`ShardReplica.kill` (a crash).  Queued
  and in-flight work fails fast with :class:`ReplicaDeadError` so the
  router can retry the partial on a sibling; a dead replica never
  comes back.
* ``draining`` — set by the rolling reprogrammer while the replica is
  being drained and reprogrammed.  A draining replica finishes what it
  accepted, takes no new work, and returns to rotation afterwards.
"""

from __future__ import annotations

import concurrent.futures

import numpy as np

from repro.backend import ArrayBackend
from repro.runtime.telemetry import RunLog, current_run_log
from repro.serve.artifact import ProgrammedArray
from repro.serve.engine import InferenceEngine
from repro.serve.health import DriftMonitor, DriftPolicy
from repro.serve.scheduler import BatchScheduler, ServeOverloadedError

__all__ = ["ReplicaDeadError", "ShardReplica"]


class ReplicaDeadError(RuntimeError):
    """The replica was killed; the query must be retried on a sibling."""


class _DeadTarget:
    """Hardware stand-in after a kill: every read fails fast."""

    def __init__(self, name: str):
        self.name = name

    def matvec(self, x: np.ndarray, ir_mode: str = "ideal") -> np.ndarray:
        raise ReplicaDeadError(f"replica {self.name} is dead")


class ShardReplica:
    """One serving copy of one shard's programmed tile.

    Args:
        artifact: The shard's golden bundle; the replica hardware is an
            exact restore of it.
        shard_index: Which shard this replica serves.
        replica_index: Position within the shard's replica set.
        ir_mode: Read-model override (the artifact's mode when ``None``).
        policy: Drift policy for the per-replica monitor.
        max_batch / max_queue / default_deadline_s / min_retry_after_s:
            Scheduler parameters (see
            :class:`~repro.serve.scheduler.BatchScheduler`).
        microbatch: Engine microbatch size.
        log: Telemetry sink shared with the rest of the fleet.
        backend: Array namespace for the replica's reads (``None``
            adopts the shard artifact's recorded default).
        nodal_solver: Solver for ``ir_mode="nodal"`` reads (``None``
            keeps the hardware's own selection).
        name_prefix: Prepended to the replica name (and thus its
            telemetry lane label).  A multi-fleet composition such as
            ``repro.pipeline`` uses ``"layer<k>/"`` so one shared run
            log keeps the per-layer lanes apart.
    """

    def __init__(
        self,
        artifact: ProgrammedArray,
        shard_index: int,
        replica_index: int,
        ir_mode: str | None = None,
        policy: DriftPolicy | None = None,
        max_batch: int = 32,
        max_queue: int = 128,
        default_deadline_s: float | None = None,
        microbatch: int = 64,
        min_retry_after_s: float = 0.05,
        log: RunLog | None = None,
        backend: ArrayBackend | str | None = None,
        nodal_solver: str | None = None,
        name_prefix: str = "",
    ):
        self.artifact = artifact
        self.shard_index = int(shard_index)
        self.replica_index = int(replica_index)
        self.name = f"{name_prefix}shard{shard_index}/r{replica_index}"
        ambient = current_run_log()
        self.log = log if log is not None else (
            ambient if ambient is not None else RunLog()
        )
        self.engine = InferenceEngine.from_artifact(
            artifact, ir_mode=ir_mode, microbatch=microbatch,
            backend=backend, nodal_solver=nodal_solver,
        )
        self.monitor = DriftMonitor(
            self.engine,
            probes=artifact.probes,
            baseline=artifact.baseline,
            policy=policy,
            repair=None,
            log=self.log,
        )
        # Single-writer liveness flags, read racily on purpose: 'alive'
        # flips True->False exactly once (kill, caller thread) and is
        # read advisorily by the scheduler worker and by router
        # callbacks — a stale read is harmless because every downstream
        # path fails fast with ReplicaDeadError and is retried.
        # 'draining' is bracketed by the reprogrammer on the caller
        # thread only.  Python bool loads/stores are atomic.
        self.alive = True  # repro-lint: atomic
        self.draining = False  # repro-lint: atomic
        self._scheduler_kwargs = dict(
            max_batch=max_batch,
            max_queue=max_queue,
            default_deadline_s=default_deadline_s,
            min_retry_after_s=min_retry_after_s,
        )
        self.scheduler = self._make_scheduler()

    def _make_scheduler(self) -> BatchScheduler:
        return BatchScheduler(
            self.engine,
            on_batch=self._on_batch,
            log=self.log,
            label=self.name,
            **self._scheduler_kwargs,
        )

    def _on_batch(self) -> None:  # repro-lint: thread=worker
        # The monitor replays probes through the engine; after a kill
        # that read would raise inside the worker thread, so skip it.
        if self.alive:
            self.monitor()

    # -- liveness ------------------------------------------------------
    @property
    def live(self) -> bool:
        """In rotation: accepting new queries from the router."""
        return self.alive and not self.draining

    @property
    def depth(self) -> int:
        """Queue depth (the router's least-loaded signal)."""
        return self.scheduler.depth

    # -- request path --------------------------------------------------
    def submit(
        self, x: np.ndarray, deadline_s: float | None = None
    ) -> concurrent.futures.Future:
        """Enqueue one partial query on this replica.

        Raises:
            ReplicaDeadError: The replica was killed (or its scheduler
                is mid-restart); retry on a sibling.
            ServeOverloadedError: The replica's queue is full.
        """
        if not self.live:
            raise ReplicaDeadError(
                f"replica {self.name} is not accepting work"
            )
        try:
            return self.scheduler.submit(x, deadline_s)
        except ServeOverloadedError:
            raise
        except RuntimeError as exc:
            # The scheduler shut down between the liveness check and
            # the enqueue (drain/kill race): same remedy as a death.
            raise ReplicaDeadError(
                f"replica {self.name} stopped accepting work"
            ) from exc

    # -- lifecycle -----------------------------------------------------
    def drain(self, timeout: float | None = None) -> None:
        """Stop intake and answer everything already queued."""
        self.scheduler.shutdown(timeout)

    def restart_scheduler(self) -> None:
        """Fresh worker thread after a drain (post-reprogram)."""
        self.scheduler = self._make_scheduler()

    def kill(self, timeout: float | None = None) -> None:
        """Simulate a replica crash.

        The hardware target is swapped for one whose reads raise
        :class:`ReplicaDeadError`, so every queued and in-flight query
        fails fast (the router retries them on siblings) instead of
        being served or silently stranded; then the worker is joined.
        A killed replica records a ``'kill'`` fleet event and never
        returns to rotation.
        """
        if not self.alive:
            return
        self.alive = False
        self.engine.target = _DeadTarget(self.name)
        self.scheduler.shutdown(timeout)
        self.log.record_fleet(
            shard=self.shard_index,
            replica=self.replica_index,
            action="kill",
        )

    def shutdown(self, timeout: float | None = None) -> None:
        """Graceful exit (fleet shutdown): drain, keep state intact."""
        self.scheduler.shutdown(timeout)
