"""Sharded multi-tile serving: replicas, routing, rolling recovery.

The horizontal scaling layer over :mod:`repro.serve`: a large layer is
row-partitioned into per-tile artifacts (:mod:`repro.fleet.plan`),
each tile is served by N independent scheduler-backed replicas
(:mod:`repro.fleet.engine`), queries are scattered and their partial
currents reduced bit-identically to a single tiled read
(:mod:`repro.fleet.router`), and drifted replicas are reprogrammed in
rolling fashion without dropping below quorum
(:mod:`repro.fleet.health`).  :class:`~repro.fleet.service.FleetService`
wires the pieces together.
"""

from repro.fleet.engine import ReplicaDeadError, ShardReplica
from repro.fleet.health import RollingReprogrammer, restore_replica
from repro.fleet.plan import (
    FleetConfig,
    ProgrammedFleet,
    fleet_key,
    program_fleet,
)
from repro.fleet.router import FleetRouter, NoLiveReplicaError, ShardGroup
from repro.fleet.service import FleetService

__all__ = [
    "FleetConfig",
    "FleetRouter",
    "FleetService",
    "NoLiveReplicaError",
    "ProgrammedFleet",
    "ReplicaDeadError",
    "RollingReprogrammer",
    "ShardGroup",
    "ShardReplica",
    "fleet_key",
    "program_fleet",
    "restore_replica",
]
