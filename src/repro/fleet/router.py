"""Scatter-gather routing: every shard answers, one replica per shard.

A fleet query touches *all* shards (each owns a row slice of the
layer) but only *one replica* of each (any replica of a shard restores
the same golden artifact, so they are interchangeable).  The router
therefore:

1. splits the query at the shard row boundaries,
2. scatters each slice to the least-loaded live replica of its shard,
3. gathers the partial column currents, and
4. reduces them digitally with the one true accumulation order
   (:meth:`TiledPair.reduce_partials`, left-to-right in shard order),
   so the gathered result is bit-identical to a single
   :meth:`TiledPair.matvec` on the same hardware state.

Failure handling is per-partial: a partial that fails with
:class:`~repro.fleet.engine.ReplicaDeadError` is resubmitted to a
sibling replica of the same shard (excluding replicas already tried),
so killing one replica of a replicated shard drops zero queries.
Deadline expiries are *not* retried — a dropped deadline is the
scheduler doing its job, and a retry would arrive even later.
"""

from __future__ import annotations

import concurrent.futures

import numpy as np

from repro.fleet.engine import ReplicaDeadError, ShardReplica
from repro.lint.sanitize import make_lock
from repro.serve.scheduler import ServeOverloadedError
from repro.xbar.tiling import TiledPair

__all__ = ["FleetRouter", "NoLiveReplicaError", "ShardGroup"]


class NoLiveReplicaError(RuntimeError):
    """Every replica of a shard is dead or excluded; the query fails."""


class ShardGroup:
    """The replica set of one shard.

    Args:
        shard_index: Which shard the group serves.
        replicas: The shard's replicas, in replica-index order.
    """

    def __init__(self, shard_index: int, replicas: list[ShardReplica]):
        if not replicas:
            raise ValueError("a shard group needs at least one replica")
        self.shard_index = int(shard_index)
        self.replicas = list(replicas)

    @property
    def live_replicas(self) -> list[ShardReplica]:
        return [r for r in self.replicas if r.live]

    def pick(self, exclude: frozenset[str] = frozenset()) -> ShardReplica:
        """Least-loaded live replica, deterministic on depth ties."""
        candidates = [
            r for r in self.live_replicas if r.name not in exclude
        ]
        if not candidates:
            raise NoLiveReplicaError(
                f"shard {self.shard_index} has no live replica left"
            )
        return min(
            candidates, key=lambda r: (r.depth, r.replica_index)
        )

    def submit(
        self,
        x: np.ndarray,
        deadline_s: float | None = None,
        exclude: frozenset[str] = frozenset(),
    ) -> tuple[ShardReplica, concurrent.futures.Future]:
        """Enqueue a partial on the best replica, walking past failures.

        A replica that dies between pick and enqueue is skipped; an
        overloaded replica is skipped too, but if *every* live replica
        is overloaded the last :class:`ServeOverloadedError` propagates
        (backpressure, not failure).
        """
        tried = set(exclude)
        overloaded: ServeOverloadedError | None = None
        while True:
            try:
                replica = self.pick(frozenset(tried))
            except NoLiveReplicaError:
                if overloaded is not None:
                    raise overloaded from None
                raise
            try:
                return replica, replica.submit(x, deadline_s)
            except ReplicaDeadError:
                tried.add(replica.name)
            except ServeOverloadedError as exc:
                overloaded = exc
                tried.add(replica.name)


class _GatherState:
    """Mutable rendezvous of one query's scattered partials."""

    def __init__(self, n_parts: int, future: concurrent.futures.Future):
        self.parts: list[np.ndarray | None] = [None] * n_parts
        self.remaining = n_parts
        self.future = future
        self.lock = make_lock("gather-state")
        self.failed = False

    def deliver(self, index: int, part: np.ndarray) -> None:  # repro-lint: thread=worker
        with self.lock:
            if self.failed:
                return
            self.parts[index] = part
            self.remaining -= 1
            # Snapshot under the lock: only the thread that lands the
            # last partial sees a full list, and taking the copy here
            # (not after release) keeps every self.parts access
            # lock-guarded.
            parts = list(self.parts) if self.remaining == 0 else None
        if parts is not None:
            # Fixed reduction order: left-to-right in shard order, the
            # same order TiledPair.matvec uses, so the gathered result
            # is bit-identical to the single-machine read.  set_result
            # runs outside the lock: it fires user callbacks.
            self.future.set_result(TiledPair.reduce_partials(parts))

    def fail(self, exc: BaseException) -> None:  # repro-lint: thread=worker
        with self.lock:
            if self.failed:
                return
            self.failed = True
        self.future.set_exception(exc)


class FleetRouter:
    """Scatter queries across shard groups, gather exact results.

    Args:
        groups: One :class:`ShardGroup` per shard, in shard order.
        ranges: The shard row ranges (``FleetConfig.ranges``); group
            ``i`` serves rows ``ranges[i]``.
    """

    def __init__(
        self,
        groups: list[ShardGroup],
        ranges: list[tuple[int, int]],
    ):
        if len(groups) != len(ranges):
            raise ValueError(
                f"{len(groups)} shard groups but {len(ranges)} row ranges"
            )
        self.groups = list(groups)
        self.ranges = list(ranges)
        self.n_rows = ranges[-1][1]

    # -- request path --------------------------------------------------
    def submit(
        self, x: np.ndarray, deadline_s: float | None = None
    ) -> concurrent.futures.Future:
        """Scatter one query; the future resolves to the reduced scores.

        Raises:
            ServeOverloadedError: Some shard had every replica's queue
                full (nothing was half-served: failed queries fail
                whole).
            NoLiveReplicaError: Some shard has no live replica at all.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 1 or x.shape[0] != self.n_rows:
            raise ValueError(
                f"input width {x.shape} != fleet rows ({self.n_rows},)"
            )
        done: concurrent.futures.Future = concurrent.futures.Future()
        state = _GatherState(len(self.groups), done)
        for i, (start, stop) in enumerate(self.ranges):
            self._dispatch(
                state, i, x[start:stop], deadline_s, frozenset()
            )
        return done

    def _dispatch(
        self,
        state: _GatherState,
        shard_index: int,
        x_slice: np.ndarray,
        deadline_s: float | None,
        exclude: frozenset[str],
    ) -> None:
        try:
            replica, future = self.groups[shard_index].submit(
                x_slice, deadline_s, exclude=exclude
            )
        except Exception as exc:
            state.fail(exc)
            return
        future.add_done_callback(
            lambda f: self._on_part(
                state, shard_index, x_slice, deadline_s,
                exclude | {replica.name}, f,
            )
        )

    def _on_part(
        self,
        state: _GatherState,
        shard_index: int,
        x_slice: np.ndarray,
        deadline_s: float | None,
        tried: frozenset[str],
        future: concurrent.futures.Future,
    ) -> None:
        exc = future.exception()
        if exc is None:
            state.deliver(shard_index, future.result())
        elif isinstance(exc, ReplicaDeadError):
            # The replica died with this partial queued or in flight:
            # replay it on a sibling that has not been tried yet.
            self._dispatch(
                state, shard_index, x_slice, deadline_s, tried
            )
        else:
            state.fail(exc)

    def predict(
        self,
        x: np.ndarray,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Synchronous single-query scores."""
        return self.submit(x, deadline_s).result(timeout=timeout)

    def forward(
        self, x: np.ndarray, timeout: float | None = None
    ) -> np.ndarray:
        """Scatter a whole batch, one query per row, and gather all.

        Submitting rows individually lets every replica's scheduler
        pack its own batches; per-row results are still bit-identical
        to the single-machine read because every read path in between
        is batch-invariant.
        """
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        xb = x[None, :] if single else x
        futures = [self.submit(row) for row in xb]
        scores = np.stack(
            [f.result(timeout=timeout) for f in futures], axis=0
        )
        return scores[0] if single else scores
