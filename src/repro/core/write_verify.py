"""Write-verify programming: per-device closed-loop trimming.

A standard practice point between the paper's two baselines: like OLD
the *training* stays off-device, but each cell is programmed with a
verify loop -- program, sense the single cell, re-trim -- until the
conductance lands within a tolerance band of its target.  This
tolerates parametric variation at the cost of programming time (and is
bounded by the pre-test ADC's resolution), which is exactly the
trade-off Vortex avoids: VAT+AMP reach comparable robustness with
**one** programming pass per cell.

The verify loop reuses the machinery of the rest of the library: the
single-cell sense path of :class:`repro.xbar.crossbar.Crossbar` (with
its ADC), and incremental updates through the device array (which
scales every step by the cell's persistent ``exp(theta)`` -- unknown
to the loop, but corrected by the feedback).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuits.adc import ADC
from repro.xbar.crossbar import Crossbar
from repro.xbar.pair import DifferentialCrossbar

__all__ = ["WriteVerifyConfig", "WriteVerifyStats", "program_pair_write_verify"]


@dataclasses.dataclass(frozen=True)
class WriteVerifyConfig:
    """Verify-loop parameters.

    Attributes:
        tolerance: Acceptance band as a fraction of the conductance
            range; a cell passes when
            ``|g_sensed - g_target| <= tolerance * (g_on - g_off)``.
        max_iterations: Trim attempts per cell before giving up.
        adc_bits: Resolution of the verify read (the loop cannot trim
            below the quantisation floor).
        step_gain: Fraction of the sensed error corrected per trim
            (under-relaxation keeps the loop stable against the
            unknown per-device programming gain).
    """

    tolerance: float = 0.01
    max_iterations: int = 10
    adc_bits: int = 8
    step_gain: float = 0.8


@dataclasses.dataclass
class WriteVerifyStats:
    """Programming-cost accounting of a write-verify pass.

    Attributes:
        total_pulses: Programming pulses issued across all cells.
        max_pulses: Worst single-cell pulse count.
        unconverged: Cells still outside tolerance at the iteration
            budget.
        mean_error: Mean |g - g_target| / range after the pass.
    """

    total_pulses: int
    max_pulses: int
    unconverged: int
    mean_error: float


def _write_verify_array(
    xbar: Crossbar, target: np.ndarray, cfg: WriteVerifyConfig
) -> WriteVerifyStats:
    """Verify-trim every cell of one array toward its target."""
    device = xbar.device
    g_range = device.g_range
    v_read = xbar.config.v_read
    adc = ADC(cfg.adc_bits, v_read * device.g_on)
    band = cfg.tolerance * g_range

    # First pass: one open-loop programming shot for every cell.
    xbar.program(target)
    pulses = np.ones(xbar.shape, dtype=int)
    pending = np.ones(xbar.shape, dtype=bool)

    for _ in range(cfg.max_iterations):
        sensed = adc.quantize(v_read * xbar.conductance) / v_read
        error = sensed - target
        pending = np.abs(error) > band
        # Stuck cells can never converge; stop burning pulses on them.
        pending &= ~xbar.array.is_stuck()
        if not pending.any():
            break
        delta = np.where(pending, -cfg.step_gain * error, 0.0)
        xbar.update(delta)
        pulses += pending.astype(int)

    sensed = adc.quantize(v_read * xbar.conductance) / v_read
    final_error = np.abs(sensed - target)
    healthy = ~xbar.array.is_stuck()
    return WriteVerifyStats(
        total_pulses=int(pulses.sum()),
        max_pulses=int(pulses.max()),
        unconverged=int(np.sum((final_error > band) & healthy)),
        mean_error=float(np.mean(final_error / g_range)),
    )


def program_pair_write_verify(
    pair: DifferentialCrossbar,
    weights: np.ndarray,
    config: WriteVerifyConfig | None = None,
    normalize_weights: bool = True,
) -> WriteVerifyStats:
    """Write-verify program a differential pair from signed weights.

    Args:
        pair: Fabricated pair (programmed in place).
        weights: Signed target weights, shape ``pair.shape``.
        config: Verify-loop parameters.
        normalize_weights: Rescale to span the representable range
            (matching the open-loop flow).

    Returns:
        Combined :class:`WriteVerifyStats` over both arrays.
    """
    cfg = config if config is not None else WriteVerifyConfig()
    if not 0.0 < cfg.tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {cfg.tolerance}")
    if cfg.max_iterations < 0:
        raise ValueError("max_iterations must be >= 0")
    weights = np.asarray(weights, dtype=float)
    if weights.shape != pair.shape:
        raise ValueError(
            f"weights shape {weights.shape} != pair shape {pair.shape}"
        )
    if normalize_weights:
        peak = float(np.max(np.abs(weights)))
        if peak > 0:
            weights = weights * (pair.scaler.w_max / peak)
    g_pos, g_neg = pair.scaler.weights_to_pair(weights)

    stats_pos = _write_verify_array(pair.positive, g_pos, cfg)
    stats_neg = _write_verify_array(pair.negative, g_neg, cfg)
    pair.digital_gains = None
    total_cells = 2 * pair.shape[0] * pair.shape[1]
    return WriteVerifyStats(
        total_pulses=stats_pos.total_pulses + stats_neg.total_pulses,
        max_pulses=max(stats_pos.max_pulses, stats_neg.max_pulses),
        unconverged=stats_pos.unconverged + stats_neg.unconverged,
        mean_error=0.5 * (stats_pos.mean_error + stats_neg.mean_error)
        if total_cells
        else 0.0,
    )
