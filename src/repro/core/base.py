"""Shared types and hardware-evaluation harness for the training schemes.

All three schemes (OLD, CLD, Vortex) are ultimately judged the same
way: program a *fabricated* (variation-bearing) differential crossbar
pair, run the test samples through the hardware read path, and report
the classification rate (the paper's "test rate").  This module owns
that common machinery so every experiment compares schemes on an
identical footing.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.circuits.adc import ADC
from repro.circuits.sensing import CurrentSense
from repro.config import (
    CrossbarConfig,
    DeviceConfig,
    SensingConfig,
    VariationConfig,
)
from repro.nn.metrics import rate_from_scores
from repro.xbar.crossbar import trial_stacked_matmul
from repro.xbar.mapping import WeightScaler
from repro.xbar.pair import DifferentialCrossbar

__all__ = [
    "HardwareSpec",
    "TrainingOutcome",
    "build_pair",
    "hardware_test_rate",
    "batched_hardware_test_rates",
    "ideal_read_path",
    "software_rates",
]


@dataclasses.dataclass(frozen=True)
class HardwareSpec:
    """Everything that defines the hardware platform of an experiment.

    Attributes:
        device: Nominal memristor parameters.
        variation: Variability statistics of the fabrication process.
        crossbar: Geometry and wire resistance.
        sensing: ADC resolution and pre-test repeat count.
        ir_mode: Read-fidelity model used for inference
            (see :data:`repro.xbar.crossbar.IR_MODES`).
        quantize_read: Apply the ADC to inference reads as well (the
            paper's computation path always senses through the ADC).
        score_headroom: Differential-ADC range sizing: the converter
            covers differential currents up to
            ``v_read * g_range * rows * score_headroom`` -- i.e. the
            output swing of a column whose average active weight
            magnitude is ``score_headroom`` of full scale.  Matching
            the converter to the realistic signal swing (instead of the
            all-devices-on worst case) is what makes a 6-bit ADC
            workable, as the paper's setup assumes.
    """

    device: DeviceConfig = dataclasses.field(default_factory=DeviceConfig)
    variation: VariationConfig = dataclasses.field(
        default_factory=VariationConfig
    )
    crossbar: CrossbarConfig = dataclasses.field(
        default_factory=CrossbarConfig
    )
    sensing: SensingConfig = dataclasses.field(default_factory=SensingConfig)
    ir_mode: str = "ideal"
    quantize_read: bool = True
    score_headroom: float = 0.02

    def with_rows(self, rows: int) -> "HardwareSpec":
        """Copy of the spec with a different crossbar row count."""
        return dataclasses.replace(
            self, crossbar=dataclasses.replace(self.crossbar, rows=rows)
        )

    def diff_adc(self, rows: int | None = None) -> ADC | None:
        """Bipolar ADC for the differential read path, or ``None``."""
        if not self.quantize_read:
            return None
        n = rows if rows is not None else self.crossbar.rows
        full_scale = (
            self.crossbar.v_read
            * self.device.g_range
            * n
            * self.score_headroom
        )
        return ADC(self.sensing.adc_bits, full_scale, bipolar=True)

    def pretest_adc(self) -> ADC:
        """ADC instance for single-cell pre-test reads.

        Pre-testing senses one device at a time, so the converter range
        only has to cover a single on-state device current.
        """
        full_scale = (
            self.crossbar.v_read
            * self.device.g_on
            * self.sensing.full_scale_margin
        )
        return ADC(self.sensing.adc_bits, full_scale)


@dataclasses.dataclass
class TrainingOutcome:
    """Common result record of any training scheme.

    Attributes:
        weights: The weight matrix in software (target) form, shape
            ``(rows, cols)`` of the *physical* crossbar.
        training_rate: Classification rate on the training samples.
        diagnostics: Scheme-specific extras (loss curves, chosen gamma,
            mapping permutation, ...).
    """

    weights: np.ndarray
    training_rate: float
    diagnostics: dict = dataclasses.field(default_factory=dict)


def build_pair(
    spec: HardwareSpec,
    scaler: WeightScaler,
    rng: np.random.Generator,
    rows: int | None = None,
) -> DifferentialCrossbar:
    """Fabricate a differential pair according to a hardware spec.

    Args:
        spec: Hardware platform description.
        scaler: Weight <-> conductance map for the pair.
        rng: Fabrication randomness (persistent variation draws).
        rows: Optional row-count override (e.g. redundancy rows).
    """
    config = spec.crossbar
    if rows is not None:
        config = dataclasses.replace(config, rows=rows)
    diff_sense = None
    # The converter range is sized to the workload's signal swing --
    # the spec's logical row count -- not to the physical row count:
    # redundancy rows idle at the g_off baseline and add no swing.
    adc = spec.diff_adc(spec.crossbar.rows)
    if adc is not None:
        diff_sense = CurrentSense(adc=adc)
    return DifferentialCrossbar(
        scaler=scaler,
        config=config,
        device=spec.device,
        variation=spec.variation,
        rng=rng,
        diff_sense=diff_sense,
    )


def hardware_test_rate(
    pair: DifferentialCrossbar,
    x: np.ndarray,
    labels: np.ndarray,
    ir_mode: str,
    input_map: Callable[[np.ndarray], np.ndarray] | None = None,
) -> float:
    """Test rate of a programmed pair through the hardware read path.

    Args:
        pair: Programmed differential crossbar.
        x: Test inputs ``(s, n_logical)`` in [0, 1].
        labels: Integer test labels.
        ir_mode: Read fidelity.
        input_map: Optional routing of logical inputs onto physical
            rows (used by AMP); identity when omitted.
    """
    x_phys = np.asarray(x, dtype=float)
    if input_map is not None:
        x_phys = input_map(x_phys)
    if x_phys.ndim == 2:
        # Post-programming calibration, as a real deployment performs:
        # the fast read model learns the workload's input statistics
        # and the sense chain auto-ranges to the observed signal swing.
        if ir_mode == "reference":
            pair.set_reference_input(x_phys.mean(axis=0))
        pair.calibrate_sense(x_phys[: min(len(x_phys), 256)])
    scores = pair.matvec(x_phys, ir_mode)
    return rate_from_scores(scores, labels)


def ideal_read_path(spec: HardwareSpec) -> bool:
    """Whether inference reads reduce to the plain einsum branch.

    True exactly when :meth:`repro.xbar.crossbar.Crossbar.read` takes
    its first (ideal) branch for this spec's ``ir_mode`` -- the regime
    the batched Monte-Carlo evaluator replicates.
    """
    return spec.ir_mode == "ideal" or spec.crossbar.r_wire == 0


def batched_hardware_test_rates(
    g_pos: np.ndarray,
    g_neg: np.ndarray,
    x: np.ndarray,
    labels: np.ndarray,
    spec: HardwareSpec,
    scaler: WeightScaler,
    trial_block: int = 16,
    backend: ArrayBackend | str | None = None,
) -> np.ndarray:
    """Test rates of a stack of programmed pairs, one hardware pass.

    The Monte-Carlo ensemble counterpart of :func:`hardware_test_rate`
    for the ideal read path (:func:`ideal_read_path` must hold):
    ``g_pos``/``g_neg`` carry the snapshot conductances of ``T``
    fabricated-and-programmed pairs, and the whole ensemble is pushed
    through the read chain at once -- fixed-accumulation einsum matvec,
    per-trial sense auto-ranging (the ``calibrate_sense`` quantile and
    floor), per-trial bipolar ADC quantisation, weight-domain scaling,
    argmax.  Every step is elementwise, a trailing-axes reduction, or a
    per-slice einsum, so trial ``t`` of the result equals programming a
    single pair with those conductances and calling
    :func:`hardware_test_rate` -- bit-for-bit.

    Digital gain calibration is not modelled here: callers must only
    snapshot pairs whose ``digital_gains`` are unset (true for every
    ideal-read experiment; the open-loop calibration is gated on
    ``r_wire > 0``).

    Args:
        g_pos: Positive-array conductances, ``(T, rows, cols)``.
        g_neg: Negative-array conductances, ``(T, rows, cols)``.
        x: Physical inputs -- ``(s, rows)`` shared by every trial, or
            ``(T, s, rows)`` when the (AMP) input routing differs per
            trial.
        labels: Integer test labels, ``(s,)``.
        spec: Hardware platform (ADC sizing, v_read, device range).
        scaler: Weight <-> conductance map of the pairs.
        trial_block: Trials evaluated per einsum call; purely a memory
            knob -- per-slice identity makes any value bit-identical.
        backend: Array namespace for the ensemble math (default: the
            bit-identical numpy reference path).  The returned rates
            are always a numpy array.

    Returns:
        Per-trial test rates, shape ``(T,)``.
    """
    if not ideal_read_path(spec):
        raise ValueError(
            "batched_hardware_test_rates only replicates the ideal read "
            f"path (ir_mode={spec.ir_mode!r}, r_wire={spec.crossbar.r_wire})"
        )
    bk = resolve_backend(backend)
    g_pos = bk.asarray(g_pos)
    g_neg = bk.asarray(g_neg)
    x = bk.asarray(x)
    labels = bk.asarray(labels, dtype=None)
    n_trials = g_pos.shape[0]
    v_read = spec.crossbar.v_read
    adc = spec.diff_adc(spec.crossbar.rows)
    scale = v_read * scaler.device.g_range / scaler.w_max
    fs_floor = v_read * spec.device.g_off

    blocks = []
    for start in range(0, n_trials, max(1, trial_block)):
        stop = min(start + max(1, trial_block), n_trials)
        gp, gn = g_pos[start:stop], g_neg[start:stop]
        xb = x if x.ndim == 2 else x[start:stop]
        i_diff = (
            v_read * trial_stacked_matmul(xb, gp, xp=bk)
            - v_read * trial_stacked_matmul(xb, gn, xp=bk)
        )
        if adc is not None:
            # Per-trial sense auto-ranging, then the mid-rise bipolar
            # quantiser with each trial's full scale broadcast in.
            x_cal = xb[:256] if xb.ndim == 2 else xb[:, :256]
            i_cal = (
                v_read * trial_stacked_matmul(x_cal, gp, xp=bk)
                - v_read * trial_stacked_matmul(x_cal, gn, xp=bk)
            )
            peak = bk.quantile(bk.abs(i_cal), 0.999, axis=(1, 2))
            fs = bk.maximum(peak * 1.5, fs_floor)[:, None, None]
            levels = 2 ** adc.bits
            lo = -fs
            lsb = (2 * fs) / levels
            codes = bk.round((bk.clip(i_diff, lo, fs) - lo) / lsb)
            i_diff = lo + bk.clip(codes, 0, levels - 1) * lsb
        scores = (i_diff - 0.0) / scale
        preds = bk.argmax(scores, axis=2)
        blocks.append(bk.mean(preds == labels[None, :], axis=1))
    if not blocks:
        return bk.to_numpy(bk.zeros(0))
    return bk.to_numpy(bk.concatenate(blocks))


def software_rates(
    weights: np.ndarray,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
) -> tuple[float, float]:
    """(training rate, test rate) of ideal software weights."""
    return (
        rate_from_scores(np.asarray(x_train) @ weights, y_train),
        rate_from_scores(np.asarray(x_test) @ weights, y_test),
    )
