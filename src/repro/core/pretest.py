"""AMP pre-testing: estimating per-device variation (Section 4.2.1).

After fabrication, every memristor is programmed toward a reference
state and its achieved resistance is sensed; repeating the
program-and-sense cycle and averaging suppresses the cycle-to-cycle
switching variation, leaving an estimate of the *persistent* parametric
deviation ``theta`` of each device.  The measurement chain is bounded
by the ADC resolution, which is exactly the lever of the paper's Fig. 8
study.

The pre-test keeps all other devices at HRS with grounded unselected
word lines, so sneak paths are suppressed (see :mod:`repro.xbar.sneak`
for what that avoids); the residual measurement error here is
quantisation plus readout noise.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuits.adc import ADC
from repro.circuits.sensing import CurrentSense
from repro.config import SensingConfig
from repro.devices.memristor import MemristorArray
from repro.xbar.pair import DifferentialCrossbar

__all__ = ["PretestResult", "pretest_array", "pretest_pair", "robust_sigma"]


@dataclasses.dataclass
class PretestResult:
    """Outcome of pre-testing a differential pair.

    Attributes:
        theta_pos: Estimated persistent theta of the positive array.
        theta_neg: Estimated persistent theta of the negative array.
        sigma_estimate: Robust estimate of the variation sigma fitted
            to all measurements (defect outliers resisted via MAD).
        target_conductance: Reference conductance used for the test.
    """

    theta_pos: np.ndarray
    theta_neg: np.ndarray
    sigma_estimate: float
    target_conductance: float


def robust_sigma(theta_samples: np.ndarray) -> float:
    """MAD-based sigma estimate, robust to stuck-at outliers.

    ``sigma ~ 1.4826 * median(|theta - median(theta)|)`` for normal
    data; stuck-at defects appear as extreme thetas and barely move the
    median.
    """
    theta = np.asarray(theta_samples, dtype=float).ravel()
    if theta.size < 2:
        raise ValueError("need at least 2 samples")
    med = np.median(theta)
    return float(1.4826 * np.median(np.abs(theta - med)))


def pretest_array(
    array: MemristorArray,
    adc: ADC,
    repeats: int = 4,
    target_fraction: float | None = None,
    v_read: float = 1.0,
    noise_std: float = 0.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Estimate the persistent theta of every device in one array.

    Args:
        array: Fabricated device array (state is clobbered; the array
            is left reset to HRS, its pre-programming idle state).
        adc: Converter quantising the single-cell sense current.
        repeats: Program-and-sense cycles averaged per device
            ("we may need to sense multiple times to eliminate the
            impacts of switching variations").
        target_fraction: Reference state as a fraction of the
            conductance range; defaults to the geometric mid-point of
            ``[g_off, g_on]``, which keeps lognormal draws on-scale.
        v_read: Sensing voltage.
        noise_std: Additive readout-noise standard deviation (A).
        rng: Randomness for the readout noise.

    Returns:
        Estimated theta map, shape ``array.shape``.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    d = array.device
    if target_fraction is None:
        g_target = float(np.sqrt(d.g_on * d.g_off))
    else:
        if not 0.0 < target_fraction <= 1.0:
            raise ValueError(
                f"target_fraction must be in (0, 1], got {target_fraction}"
            )
        g_target = d.g_off + target_fraction * d.g_range
    sense = CurrentSense(adc=adc, noise_std=noise_std, rng=rng)

    acc = np.zeros(array.shape)
    targets = np.full(array.shape, g_target)
    for _ in range(repeats):
        achieved = array.program_conductance(targets, with_cycle_noise=True)
        currents = v_read * achieved
        acc += sense.sense(currents)
    mean_g = acc / (repeats * v_read)
    mean_g = np.maximum(mean_g, d.g_off * 1e-3)
    array.reset_to_hrs()
    return np.log(mean_g / g_target)


def pretest_pair(
    pair: DifferentialCrossbar,
    sensing: SensingConfig | None = None,
    adc: ADC | None = None,
    noise_std: float = 0.0,
    rng: np.random.Generator | None = None,
) -> PretestResult:
    """Pre-test both arrays of a differential pair.

    Args:
        pair: Fabricated pair (arrays are left reset to HRS).
        sensing: Resolution/repeat settings; defaults used if omitted.
        adc: Explicit converter; built from ``sensing`` when omitted
            (full scale covering one on-state device).
        noise_std: Additive readout noise (A).
        rng: Randomness for readout noise.

    Returns:
        A :class:`PretestResult` with per-device theta estimates.
    """
    cfg = sensing if sensing is not None else SensingConfig()
    device = pair.positive.device
    v_read = pair.config.v_read
    if adc is None:
        adc = ADC(cfg.adc_bits, v_read * device.g_on * cfg.full_scale_margin)
    theta_pos = pretest_array(
        pair.positive.array, adc, cfg.sense_repeats,
        v_read=v_read, noise_std=noise_std, rng=rng,
    )
    theta_neg = pretest_array(
        pair.negative.array, adc, cfg.sense_repeats,
        v_read=v_read, noise_std=noise_std, rng=rng,
    )
    g_target = float(np.sqrt(device.g_on * device.g_off))
    sigma = robust_sigma(np.concatenate([theta_pos.ravel(), theta_neg.ravel()]))
    return PretestResult(
        theta_pos=theta_pos,
        theta_neg=theta_neg,
        sigma_estimate=sigma,
        target_conductance=g_target,
    )
