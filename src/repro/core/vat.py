"""VAT: variation-aware training (Section 4.1, Eqs. 3-10).

The paper's core algorithmic contribution.  VAT rewrites the hinge
training constraint of Eq. 3 to budget for the lognormal weight
variation the crossbar will inject:

1. Linearise ``exp(theta) ~ alpha_0 + alpha_1 * theta`` (Eq. 5;
   ``alpha_0 = alpha_1 = 1`` to first order around ``theta = 0``).
2. Upper-bound the variation penalty by Cauchy-Schwarz (Eq. 7):
   ``sum_q x_q w_q theta_q <= ||theta||_2 * ||x (.) w||_2``.
3. Bound ``||theta||_2 <= rho`` at a chi-square confidence level
   (Section 4.1.1 text before Eq. 8).
4. Scale the penalty by ``gamma`` in [0, 1] to trade training rate for
   variation tolerance (Eq. 10, Fig. 4).

The resulting robust hinge problem is solved in software by the
subgradient trainer of :mod:`repro.nn.gdt`.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.stats import norm

from repro.analysis.chi2 import rho_bound
from repro.core.base import TrainingOutcome
from repro.nn.gdt import GDTConfig, train_gdt
from repro.nn.linear import one_vs_all_targets
from repro.nn.metrics import rate_from_scores

__all__ = ["VATConfig", "train_vat"]


@dataclasses.dataclass(frozen=True)
class VATConfig:
    """VAT hyper-parameters.

    Attributes:
        gamma: Penalty scaling ``gamma`` of Eq. 10; 0 recovers the
            conventional GDT objective.
        sigma: Device-variation standard deviation assumed by the
            penalty; in the integrated flow this is the (post-AMP)
            estimate from pre-testing (Section 4.3).
        confidence: Confidence level for the ``rho`` bound.
        gdt: Underlying subgradient-trainer hyper-parameters.
        alpha1: Linearisation slope ``alpha_1`` of Eq. 5.
        bound: Which confidence bound sizes the penalty:

            * ``'gaussian'`` (default) -- the output deviation
              ``sum_q x_q w_q theta_q`` is itself Gaussian with
              standard deviation ``sigma * ||x (.) w||_2``, so the
              tight one-sided bound is ``z_c * sigma``.  This
              calibration places the Fig. 4 test-rate peak in the
              paper's 0.2-0.4 gamma range.
            * ``'chi2'`` -- the paper's Section 4.1.1 derivation:
              Cauchy-Schwarz plus a chi-square bound on
              ``||theta||_2``, giving ``rho = sigma * sqrt(chi2_c(n))``.
              Far more conservative (it budgets for a worst-case theta
              *direction*), which compresses the useful gamma range
              toward 0; the two differ only by a rescaling of gamma.
    """

    gamma: float = 0.2
    sigma: float = 0.6
    confidence: float = 0.95
    gdt: GDTConfig = dataclasses.field(default_factory=GDTConfig)
    alpha1: float = 1.0
    bound: str = "gaussian"

    def penalty_scale(self, n_rows: int) -> float:
        """The combined coefficient ``gamma * alpha_1 * rho`` of Eq. 10.

        Because both the margin and the penalty scale linearly with the
        weights, the quantity that decides feasibility is the
        scale-invariant coherence ``||x (.) w||_2 / (x . w)``.
        """
        if not 0.0 <= self.gamma:
            raise ValueError(f"gamma must be >= 0, got {self.gamma}")
        if self.bound == "chi2":
            rho = rho_bound(self.sigma, n_rows, self.confidence)
        elif self.bound == "gaussian":
            rho = float(norm.ppf(self.confidence)) * self.sigma
        else:
            raise ValueError(
                f"bound must be 'gaussian' or 'chi2', got {self.bound!r}"
            )
        return self.gamma * self.alpha1 * rho


def train_vat(
    x: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
    config: VATConfig | None = None,
    w_init: np.ndarray | None = None,
) -> TrainingOutcome:
    """Train a one-vs-all classifier with the VAT robust objective.

    Args:
        x: Training inputs ``(s, n)`` in [0, 1].
        labels: Integer training labels ``(s,)``.
        n_classes: Number of output columns.
        config: VAT hyper-parameters (``gamma = 0`` degenerates to
            conventional GDT, the software stage of OLD).
        w_init: Optional warm start.

    Returns:
        A :class:`~repro.core.base.TrainingOutcome`; diagnostics hold
        the penalty scale and loss history.
    """
    x = np.asarray(x, dtype=float)
    labels = np.asarray(labels)
    cfg = config if config is not None else VATConfig()
    y = one_vs_all_targets(labels, n_classes)
    scale = cfg.penalty_scale(x.shape[1])
    result = train_gdt(x, y, penalty_scale=scale, config=cfg.gdt,
                       w_init=w_init)
    training_rate = rate_from_scores(x @ result.weights, labels)
    return TrainingOutcome(
        weights=result.weights,
        training_rate=training_rate,
        diagnostics={
            "gamma": cfg.gamma,
            "penalty_scale": scale,
            "loss_history": result.loss_history,
            "converged": result.converged,
        },
    )
