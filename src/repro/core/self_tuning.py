"""Gamma self-tuning by validation under injected variation (Fig. 5).

Fig. 4 shows the test rate under variation peaks at an interior
``gamma``; Section 4.1.3 selects it automatically: split the training
samples into a large training group and a small validation group,
train at each candidate ``gamma``, *inject* modelled device variations
into the trained weights, and keep the ``gamma`` whose validation rate
under injection is highest.  The procedure mirrors regularisation
selection in classical ML, with the injection playing the role of the
deployment distribution.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Sequence

import numpy as np

from repro.core.vat import VATConfig, train_vat
from repro.devices.variation import sample_standard_thetas
from repro.nn.gdt import GDTConfig
from repro.nn.metrics import rate_from_scores
from repro.nn.split import stratified_split
from repro.runtime.executor import parallel_map
from repro.seeding import ensure_rng

__all__ = ["SelfTuningConfig", "GammaScanPoint", "TuneResult", "tune_gamma",
           "injected_rate", "injected_rate_looped"]

DEFAULT_GAMMAS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0)


@dataclasses.dataclass(frozen=True)
class SelfTuningConfig:
    """Self-tuning loop parameters.

    Attributes:
        gammas: Candidate penalty scalings to scan.
        val_fraction: Share of the training samples held out for
            validation (the paper's "small group").
        n_injections: Independent variation injections averaged per
            candidate (Monte-Carlo estimate of the deployed rate).
        confidence: Confidence level for the rho bound.
        bound: Penalty bound family passed to VAT ('gaussian'/'chi2').
        distribution: Shape of the theta draws injected during
            validation; matches the device model assumed for
            deployment ('lognormal' is the paper's).
        gdt: Subgradient-trainer settings shared by all candidates.
        warm_start: Reuse the previous candidate's weights as the next
            initial point (large speed-up on fine gamma grids).
    """

    gammas: Sequence[float] = DEFAULT_GAMMAS
    val_fraction: float = 0.2
    n_injections: int = 8
    confidence: float = 0.95
    bound: str = "gaussian"
    distribution: str = "lognormal"
    gdt: GDTConfig = dataclasses.field(default_factory=GDTConfig)
    warm_start: bool = True


@dataclasses.dataclass
class GammaScanPoint:
    """Rates observed for one candidate gamma.

    Attributes:
        gamma: The candidate value.
        training_rate: Rate on the (large) training group, no
            variation.
        validation_rate_clean: Rate on the validation group, no
            variation injected.
        validation_rate_injected: Mean rate on the validation group
            over the variation injections -- the selection criterion.
    """

    gamma: float
    training_rate: float
    validation_rate_clean: float
    validation_rate_injected: float


@dataclasses.dataclass
class TuneResult:
    """Outcome of the gamma scan.

    Attributes:
        best_gamma: The selected penalty scaling.
        scan: Per-candidate rates, in scan order.
        weights: Weights retrained at ``best_gamma`` on *all* training
            samples (the paper's "final training process").
    """

    best_gamma: float
    scan: list[GammaScanPoint]
    weights: np.ndarray


def injected_rate(
    weights: np.ndarray,
    x: np.ndarray,
    labels: np.ndarray,
    sigma: float,
    n_injections: int,
    rng: np.random.Generator | None = None,
    thetas: np.ndarray | None = None,
) -> float:
    """Mean classification rate under per-cell lognormal injection.

    Models deployment on a varying crossbar: each injection multiplies
    every weight by an independent ``exp(theta)`` draw, exactly the
    paper's validation step ("we first model the memristor variations
    and inject them into the weight matrix W").

    All injections are evaluated in one batched forward pass: the
    ``(n_injections, n, m)`` injected-weight stack goes through a
    single fixed-accumulation einsum instead of a Python loop of full
    matmuls.  The einsum reduces each injection slice in the same
    order a per-injection einsum would, so the batched evaluation is
    bit-identical to :func:`injected_rate_looped` (the loop-of-slices
    reference retained for the property tests).

    Args:
        thetas: Optional pre-drawn injection angles of shape
            ``(n_injections,) + weights.shape`` (standard normal; they
            are scaled by ``sigma`` here).  Supplying the same draws
            for every candidate turns the gamma scan into a paired
            comparison, removing most of the Monte-Carlo noise from
            the selection.
    """
    thetas = _validated_thetas(weights, n_injections, rng, thetas)
    x = np.asarray(x, dtype=float)
    if sigma > 0:
        w_all = weights * np.exp(sigma * thetas)
    else:
        w_all = np.broadcast_to(
            weights, (n_injections,) + weights.shape
        )
    scores = np.einsum("sn,knm->ksm", x, w_all)
    total = 0.0
    for k in range(n_injections):
        total += rate_from_scores(scores[k], labels)
    return total / n_injections


def injected_rate_looped(
    weights: np.ndarray,
    x: np.ndarray,
    labels: np.ndarray,
    sigma: float,
    n_injections: int,
    rng: np.random.Generator | None = None,
    thetas: np.ndarray | None = None,
) -> float:
    """Reference per-injection loop for :func:`injected_rate`.

    Evaluates one injection at a time with the same fixed-accumulation
    einsum the batched path uses per slice.  Kept as the oracle for
    the bit-identity property tests; production code should call
    :func:`injected_rate`.
    """
    thetas = _validated_thetas(weights, n_injections, rng, thetas)
    x = np.asarray(x, dtype=float)
    total = 0.0
    for k in range(n_injections):
        if sigma > 0:
            w_injected = weights * np.exp(sigma * thetas[k])
        else:
            w_injected = weights
        scores = np.einsum("sn,nm->sm", x, w_injected)
        total += rate_from_scores(scores, labels)
    return total / n_injections


def _validated_thetas(
    weights: np.ndarray,
    n_injections: int,
    rng: np.random.Generator | None,
    thetas: np.ndarray | None,
) -> np.ndarray:
    if n_injections < 1:
        raise ValueError(f"n_injections must be >= 1, got {n_injections}")
    if thetas is None:
        if rng is None:
            raise ValueError("need an rng when thetas are not supplied")
        return rng.standard_normal((n_injections,) + weights.shape)
    if thetas.shape != (n_injections,) + weights.shape:
        raise ValueError(
            f"thetas shape {thetas.shape} != "
            f"{(n_injections,) + weights.shape}"
        )
    return thetas


def _scan_candidate(
    gamma: float,
    x_tr: np.ndarray,
    y_tr: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    n_classes: int,
    sigma: float,
    cfg: SelfTuningConfig,
    thetas: np.ndarray,
    w_init: np.ndarray | None = None,
) -> tuple[GammaScanPoint, np.ndarray]:
    """Train and validate one candidate gamma (pure given its inputs).

    Module-level (rather than a loop body) so the gamma grid -- the
    hottest inner loop of the Fig. 5 self-tuning flow -- can fan out
    over the :mod:`repro.runtime` process pool when candidates are
    independent.  The shared ``thetas`` make the validation a paired
    comparison and keep the evaluation deterministic, so running
    candidates in parallel is bit-identical to the serial scan.
    """
    vat_cfg = VATConfig(
        gamma=float(gamma), sigma=sigma, confidence=cfg.confidence,
        bound=cfg.bound, gdt=cfg.gdt,
    )
    outcome = train_vat(x_tr, y_tr, n_classes, vat_cfg, w_init=w_init)
    clean = rate_from_scores(x_val @ outcome.weights, y_val)
    injected = injected_rate(
        outcome.weights, x_val, y_val, sigma, cfg.n_injections,
        rng=None, thetas=thetas,
    )
    point = GammaScanPoint(
        gamma=float(gamma),
        training_rate=outcome.training_rate,
        validation_rate_clean=clean,
        validation_rate_injected=injected,
    )
    return point, outcome.weights


def tune_gamma(
    x: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
    sigma: float,
    config: SelfTuningConfig | None = None,
    rng: np.random.Generator | None = None,
) -> TuneResult:
    """Run the Fig. 5 self-tuning loop and return the tuned weights.

    Args:
        x: All training inputs ``(s, n)``.
        labels: Integer labels ``(s,)``.
        n_classes: Output columns.
        sigma: Device-variation model parameter used both inside the
            VAT penalty and for the validation injections; in the
            integrated Vortex flow this is the post-AMP effective
            sigma (Section 4.3).
        config: Loop parameters.
        rng: Randomness for the split and the injections.

    Returns:
        A :class:`TuneResult`; ``weights`` come from the final
        all-samples retraining at the selected gamma.
    """
    cfg = config if config is not None else SelfTuningConfig()
    rng = ensure_rng(rng, "repro.core.self_tuning.tune_gamma")
    x = np.asarray(x, dtype=float)
    labels = np.asarray(labels)
    if len(cfg.gammas) == 0:
        raise ValueError("need at least one candidate gamma")

    split = stratified_split(labels, cfg.val_fraction, rng)
    x_tr, y_tr, x_val, y_val = split.apply(x, labels)

    # Common random numbers: one set of injection draws shared by all
    # candidates makes the scan a paired comparison.
    n_weights_shape = (x.shape[1], n_classes)
    thetas = sample_standard_thetas(
        rng, cfg.distribution, (cfg.n_injections,) + n_weights_shape
    )

    evaluate = functools.partial(
        _scan_candidate,
        x_tr=x_tr, y_tr=y_tr, x_val=x_val, y_val=y_val,
        n_classes=n_classes, sigma=sigma, cfg=cfg, thetas=thetas,
    )
    w_prev: np.ndarray | None = None
    if cfg.warm_start:
        # Each candidate starts from the previous solution: an
        # inherently sequential chain, kept in-process.
        outcomes = []
        for gamma in cfg.gammas:
            point, weights = evaluate(gamma, w_init=w_prev)
            outcomes.append((point, weights))
            w_prev = weights
    else:
        # Independent cold-start candidates: the engine fans the grid
        # out over workers; shared thetas keep results bit-identical
        # to the serial scan at any worker count.
        outcomes = parallel_map(evaluate, cfg.gammas, label="tune_gamma")

    scan = [point for point, _ in outcomes]
    best_gamma = float(cfg.gammas[0])
    best_injected = -np.inf
    for point in scan:
        if point.validation_rate_injected > best_injected:
            best_injected = point.validation_rate_injected
            best_gamma = point.gamma

    final_cfg = VATConfig(
        gamma=best_gamma, sigma=sigma, confidence=cfg.confidence,
        bound=cfg.bound, gdt=cfg.gdt,
    )
    final = train_vat(x, labels, n_classes, final_cfg, w_init=w_prev)
    return TuneResult(best_gamma=best_gamma, scan=scan, weights=final.weights)
