"""Vortex: the integrated VAT + AMP training pipeline (Section 4).

The paper's full scheme, stacking its two complementary techniques
(Section 4.3):

1. **Pre-test** the fabricated pair to measure the per-device
   variations and the crossbar's effective sigma.
2. **Self-tune** VAT's gamma on a validation split with variation
   injection (Fig. 5) and train the weights.
3. **AMP**: map the trained weight rows onto physical rows so the
   sensitive weights land on well-behaved devices (Algorithm 1);
   redundancy rows widen the choice.
4. **Integrate**: AMP lowers the variation the computation actually
   sees, so VAT is re-tuned against the smaller *effective* sigma --
   "a smaller penalty of variation will be introduced in VAT, leading
   to potentially higher training rate and test rate".
5. **Program** the physical weights open-loop with deterministic
   IR-drop compensation, and route the inputs through the mapping.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import SensingConfig
from repro.core.amp import AMPResult, RowMapping, effective_sigma, run_amp
from repro.core.base import hardware_test_rate
from repro.core.old import OLDConfig, program_pair_open_loop
from repro.core.pretest import pretest_pair
from repro.core.self_tuning import SelfTuningConfig, TuneResult, tune_gamma
from repro.core.sensitivity import mapping_order
from repro.core.greedy import greedy_mapping, optimal_mapping
from repro.core.swv import swv_pair
from repro.nn.metrics import rate_from_scores
from repro.seeding import ensure_rng
from repro.xbar.pair import DifferentialCrossbar

__all__ = ["VortexConfig", "VortexResult", "run_vortex"]


@dataclasses.dataclass(frozen=True)
class VortexConfig:
    """Pipeline configuration.

    Attributes:
        self_tuning: Gamma-scan settings (Fig. 5 loop).
        sensing: Pre-test ADC resolution and repeats.
        programming: Open-loop programming / IR-compensation settings.
        use_amp: Enable the adaptive-mapping stage.
        amp_method: ``'greedy'`` (Algorithm 1) or ``'optimal'``.
        integrate: Re-tune VAT against the post-AMP effective sigma
            (the Section 4.3 integration).
    """

    self_tuning: SelfTuningConfig = dataclasses.field(
        default_factory=SelfTuningConfig
    )
    sensing: SensingConfig = dataclasses.field(default_factory=SensingConfig)
    programming: OLDConfig = dataclasses.field(default_factory=OLDConfig)
    use_amp: bool = True
    amp_method: str = "greedy"
    integrate: bool = True


@dataclasses.dataclass
class VortexResult:
    """Everything the pipeline produced.

    Attributes:
        weights: Final logical weight matrix ``(n_logical, m)``.
        mapping: Row assignment applied to weights and inputs.
        gamma: Selected penalty scaling (post-integration value).
        sigma_pretest: Sigma estimated from the raw pre-test.
        sigma_effective: Residual sigma after AMP (equals the pre-test
            value when AMP is disabled).
        training_rate: Software rate of the final weights on the
            training samples.
        tune: Full gamma-scan record of the final tuning pass.
        amp: AMP details, or ``None`` when disabled.
    """

    weights: np.ndarray
    mapping: RowMapping
    gamma: float
    sigma_pretest: float
    sigma_effective: float
    training_rate: float
    tune: TuneResult
    amp: AMPResult | None

    def route_inputs(self, x: np.ndarray) -> np.ndarray:
        """Map logical inputs onto the physical word lines."""
        return self.mapping.inputs_to_physical(x)

    def test_rate(
        self,
        pair: DifferentialCrossbar,
        x: np.ndarray,
        labels: np.ndarray,
        ir_mode: str = "ideal",
    ) -> float:
        """Hardware test rate of the programmed pair on a dataset."""
        return hardware_test_rate(
            pair, x, labels, ir_mode, input_map=self.route_inputs
        )


def run_vortex(
    pair: DifferentialCrossbar,
    x_train: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
    config: VortexConfig | None = None,
    rng: np.random.Generator | None = None,
) -> VortexResult:
    """Execute the full Vortex flow on a fabricated pair.

    Args:
        pair: Fabricated differential crossbar; may have more rows than
            the feature count (redundancy).  Programmed in place.
        x_train: Training inputs ``(s, n_logical)`` in [0, 1].
        labels: Integer training labels.
        n_classes: Output columns.
        config: Pipeline configuration.
        rng: Randomness (pre-test noise, tuning split, injections).

    Returns:
        A :class:`VortexResult`; the pair is left programmed and ready
        for :meth:`VortexResult.test_rate`.
    """
    cfg = config if config is not None else VortexConfig()
    rng = ensure_rng(rng, "repro.core.vortex.run_vortex")
    x_train = np.asarray(x_train, dtype=float)
    labels = np.asarray(labels)
    n_logical = x_train.shape[1]
    if n_logical > pair.shape[0]:
        raise ValueError(
            f"{n_logical} features exceed {pair.shape[0]} physical rows"
        )

    # 1. Pre-test: measure the fabricated variations.
    pretest = pretest_pair(pair, cfg.sensing, rng=rng)
    sigma_hat = pretest.sigma_estimate

    # 2. First tuning pass against the raw sigma.
    tune = tune_gamma(
        x_train, labels, n_classes, sigma_hat, cfg.self_tuning, rng
    )
    weights = tune.weights
    gamma = tune.best_gamma

    amp_result: AMPResult | None = None
    sigma_eff = sigma_hat
    x_mean = x_train.mean(axis=0)
    if cfg.use_amp:
        # 3. Map the trained rows onto the measured fabric.
        amp_result = run_amp(
            pair, weights, x_mean, cfg.sensing, cfg.amp_method, rng,
            pretest=pretest,
        )
        sigma_eff = amp_result.effective_sigma
        mapping = amp_result.mapping

        if cfg.integrate and sigma_eff < sigma_hat:
            # 4. Integration: re-tune against the reduced sigma, then
            # refresh the mapping for the new weights (pre-test reused;
            # no extra measurements).
            tune = tune_gamma(
                x_train, labels, n_classes, sigma_eff, cfg.self_tuning, rng
            )
            weights = tune.weights
            gamma = tune.best_gamma
            swv = swv_pair(
                weights, pretest.theta_pos, pretest.theta_neg, pair.scaler
            )
            order = mapping_order(weights, x_mean)
            if cfg.amp_method == "greedy":
                assignment = greedy_mapping(swv, order)
            else:
                assignment = optimal_mapping(swv)
            mapping = RowMapping(
                assignment=assignment, n_physical=pair.shape[0]
            )
            sigma_eff = effective_sigma(
                mapping, weights, pretest.theta_pos, pretest.theta_neg,
                scaler=pair.scaler,
            )
            amp_result = dataclasses.replace(
                amp_result,
                mapping=mapping,
                swv=swv,
                effective_sigma=sigma_eff,
            )
    else:
        mapping = RowMapping(
            assignment=np.arange(n_logical), n_physical=pair.shape[0]
        )

    # 5. Program the physical weights open-loop (IR-compensated).
    w_physical = mapping.weights_to_physical(weights)
    x_ref_physical = mapping.inputs_to_physical(x_mean)
    program_pair_open_loop(
        pair, w_physical, cfg.programming, x_reference=x_ref_physical
    )

    training_rate = rate_from_scores(x_train @ weights, labels)
    return VortexResult(
        weights=weights,
        mapping=mapping,
        gamma=gamma,
        sigma_pretest=sigma_hat,
        sigma_effective=sigma_eff,
        training_rate=training_rate,
        tune=tune,
        amp=amp_result,
    )
