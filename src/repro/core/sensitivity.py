"""AMP sensitivity analysis (Section 4.2.1, Eq. 11).

The sensitivity of output ``y_j`` to the variation of device ``(i, j)``
is ``dy_j / d(e^theta_ij) = x_i * w_ij``: the product of the input the
device sees and the weight it stores.  Rows whose devices carry large
products demand the best-behaved physical rows; AMP orders the mapping
queue by this quantity.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cell_sensitivity", "row_sensitivity", "mapping_order"]


def cell_sensitivity(
    weights: np.ndarray, x_mean: np.ndarray
) -> np.ndarray:
    """Per-cell sensitivity ``|x_i * w_ij|`` (Eq. 11).

    Args:
        weights: Signed weight matrix ``(n, m)``.
        x_mean: Mean input activity per feature, shape ``(n,)`` --
            the expected drive each word line sees over the workload.

    Returns:
        Non-negative sensitivity matrix ``(n, m)``.
    """
    w = np.asarray(weights, dtype=float)
    x = np.asarray(x_mean, dtype=float)
    if w.ndim != 2 or x.shape != (w.shape[0],):
        raise ValueError(
            f"weights must be (n, m) and x_mean (n,); got {w.shape}, {x.shape}"
        )
    if np.any(x < 0):
        raise ValueError("x_mean must be non-negative (inputs are in [0, 1])")
    return np.abs(w) * x[:, None]


def row_sensitivity(weights: np.ndarray, x_mean: np.ndarray) -> np.ndarray:
    """Total sensitivity of each weight row: ``x_i * sum_j |w_ij|``."""
    return cell_sensitivity(weights, x_mean).sum(axis=1)


def mapping_order(weights: np.ndarray, x_mean: np.ndarray) -> np.ndarray:
    """Row indices in decreasing sensitivity (the greedy queue order).

    "The mapping starts with the row of W with the largest device
    variation sensitivity calculated in Eq. (11)" (Section 4.2.2).
    Ties break toward the lower row index for determinism.
    """
    sens = row_sensitivity(weights, x_mean)
    # stable sort on negated values keeps ties in ascending row order
    return np.argsort(-sens, kind="stable")
