"""Row-mapping algorithms for AMP (Section 4.2.2, Algorithm 1).

The paper's Algorithm 1 is a greedy assignment: walk the weight rows in
decreasing sensitivity order and give each the still-unused physical
row with the smallest SWV.  Redundant rows simply enlarge the physical
pool.  The module also ships a Hungarian (optimal-assignment) variant
to quantify the greedy gap -- the paper notes "other optimization
algorithms can also be applied to the mapping process".
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

__all__ = ["greedy_mapping", "optimal_mapping", "identity_mapping"]


def _validate_swv(swv: np.ndarray) -> np.ndarray:
    swv = np.asarray(swv, dtype=float)
    if swv.ndim != 2:
        raise ValueError("swv must be 2-D (n_logical, n_physical)")
    if swv.shape[0] > swv.shape[1]:
        raise ValueError(
            f"not enough physical rows: need >= {swv.shape[0]}, "
            f"have {swv.shape[1]}"
        )
    return swv


def identity_mapping(n_logical: int) -> np.ndarray:
    """The trivial mapping: weight row ``p`` on physical row ``p``."""
    return np.arange(n_logical)


def greedy_mapping(
    swv: np.ndarray, order: np.ndarray | None = None
) -> np.ndarray:
    """Algorithm 1: sensitivity-ordered greedy assignment.

    Args:
        swv: Cost matrix ``(n_logical, n_physical)``; entry ``(p, q)``
            is the summed weighted variation of placing weight row
            ``p`` on physical row ``q``.
        order: Processing order of the logical rows (most sensitive
            first, from :func:`repro.core.sensitivity.mapping_order`);
            natural order when omitted.

    Returns:
        Assignment array ``a`` of shape ``(n_logical,)`` with
        ``a[p] = q``; all values distinct.
    """
    swv = _validate_swv(swv)
    n_logical, n_physical = swv.shape
    if order is None:
        order = np.arange(n_logical)
    else:
        order = np.asarray(order)
        if sorted(order.tolist()) != list(range(n_logical)):
            raise ValueError("order must be a permutation of the weight rows")
    assignment = np.full(n_logical, -1, dtype=int)
    available = np.ones(n_physical, dtype=bool)
    big = np.inf
    for p in order:
        costs = np.where(available, swv[p], big)
        q = int(np.argmin(costs))
        assignment[p] = q
        available[q] = False
    return assignment


def optimal_mapping(swv: np.ndarray) -> np.ndarray:
    """Minimum-total-SWV assignment (Hungarian algorithm).

    Solves the rectangular assignment exactly; the gap to
    :func:`greedy_mapping` is the price of the paper's O(n^2) greedy
    heuristic.
    """
    swv = _validate_swv(swv)
    row_ind, col_ind = linear_sum_assignment(swv)
    assignment = np.full(swv.shape[0], -1, dtype=int)
    assignment[row_ind] = col_ind
    return assignment
