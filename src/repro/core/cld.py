"""CLD: close-loop on-device training (Sections 2.2.3, 3.2, 3.3).

The feedback baseline: gradient-descent training executed directly on
the crossbar by iterating "programming and sensing" (Eq. 1):

    W := W - alpha * dy/dW * (y_hat - y)

Each iteration senses the actual crossbar output through the ADC,
computes the delta-rule update, and applies it as incremental
conductance changes.  The loop inherently tolerates parametric device
variation -- the sensed output already contains it -- but two hardware
effects degrade it:

* **IR-drop** (Eq. 2): the programming voltage delivered to a cell is
  degraded by the wire drops; through the exponential switching
  nonlinearity this scales the *effective* per-cell update by the
  factors ``beta`` (horizontal) and ``D`` (vertical), freezing the
  far-from-driver rows of large crossbars.
* **Sensing resolution** (Section 3.3): the error signal is quantised
  by the ADC, bounding how closely the loop can converge.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.base import TrainingOutcome
from repro.nn.linear import one_vs_all_targets
from repro.seeding import ensure_rng
from repro.nn.metrics import rate_from_scores
from repro.xbar.ir_drop import program_factors
from repro.xbar.pair import DifferentialCrossbar

__all__ = ["CLDConfig", "train_cld"]


@dataclasses.dataclass(frozen=True)
class CLDConfig:
    """Close-loop trainer hyper-parameters.

    Attributes:
        learning_rate: Normalised delta-rule step: the raw update is
            divided by the training set's mean squared input norm
            (NLMS normalisation), so the loop gain -- and therefore
            stability -- is independent of the crossbar height.
        lr_decay: Multiplicative step decay per epoch; damps the
            oscillation that the per-device programming-gain noise
            (``exp(theta)`` on every update) otherwise sustains.
        epochs: Maximum passes over the training set.
        batch_size: Samples per program-and-sense iteration.
        target_scale: Regression targets are ``+-target_scale`` (in
            ``w_max``-normalised output units).  The delta-rule
            solution must be representable within the conductance
            range, so the target amplitude is sized below the rails.
        ir_drop_in_programming: Skew the applied updates by the
            delivered-voltage factors (Eq. 2's ``beta`` and ``D``).
        ir_mode_read: Read-fidelity model for the sensing step.
        factor_refresh: Program-and-sense iterations between
            recomputations of the delivered-voltage factors (they
            depend on the evolving conductance state).
        stop_patience: Early-stop after this many epochs without
            improvement of the sensed training error.
    """

    learning_rate: float = 2.0
    lr_decay: float = 0.97
    epochs: int = 60
    batch_size: int = 64
    target_scale: float = 0.8
    ir_drop_in_programming: bool = True
    ir_mode_read: str = "reference"
    factor_refresh: int = 20
    stop_patience: int = 8


def _update_efficiencies(
    pair: DifferentialCrossbar, cfg: CLDConfig
) -> tuple[np.ndarray | float, np.ndarray | float]:
    """Per-cell programming efficiency of both arrays under IR-drop.

    The delivered-voltage factor ``f`` maps to an update-magnitude
    factor through the switching nonlinearity:
    ``rate(f * V) / rate(V)`` -- the mechanism by which Section 3.2's
    ``Delta w_1j < Delta w_nj / 1000`` arises.
    """
    r_wire = pair.config.r_wire
    if not cfg.ir_drop_in_programming or r_wire == 0:
        return 1.0, 1.0
    effs = []
    for xbar in (pair.positive, pair.negative):
        decomposition = program_factors(
            xbar.conductance, r_wire, xbar.device.v_set
        )
        eff = xbar.array.switching.nonlinearity_factor(
            xbar.device.v_set * decomposition.combined, "set"
        )
        effs.append(eff)
    return effs[0], effs[1]


def train_cld(
    pair: DifferentialCrossbar,
    x: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
    config: CLDConfig | None = None,
    rng: np.random.Generator | None = None,
) -> TrainingOutcome:
    """Train a fabricated pair in-place with close-loop GDT.

    Args:
        pair: Fabricated differential crossbar (updated in place); its
            sensing chain (ADC) bounds the error feedback resolution.
        x: Training inputs ``(s, n)`` with ``n == pair rows``.
        labels: Integer training labels.
        n_classes: Number of output columns.
        config: Trainer hyper-parameters.
        rng: Shuffling randomness.

    Returns:
        A :class:`~repro.core.base.TrainingOutcome` whose ``weights``
        are the *effective* weights realised on the hardware and whose
        diagnostics include the sensed-error history.
    """
    cfg = config if config is not None else CLDConfig()
    rng = ensure_rng(rng, "repro.core.cld.train_cld")
    x = np.asarray(x, dtype=float)
    labels = np.asarray(labels)
    if x.ndim != 2 or x.shape[1] != pair.shape[0]:
        raise ValueError(
            f"x must be (s, {pair.shape[0]}), got {x.shape}"
        )
    y = cfg.target_scale * one_vs_all_targets(labels, n_classes)
    if cfg.ir_mode_read == "reference":
        pair.set_reference_input(x.mean(axis=0))

    scaler = pair.scaler
    device = pair.positive.device
    # Weight-step -> conductance-step conversion.
    g_per_w = device.g_range / scaler.w_max

    eff_pos: np.ndarray | float = 1.0
    eff_neg: np.ndarray | float = 1.0
    error_history: list[float] = []
    best_error = np.inf
    stale_epochs = 0
    iteration = 0
    # NLMS normalisation: keeps the feedback-loop gain size-invariant.
    mean_sq_norm = float(np.mean(np.sum(x * x, axis=1)))
    lr = cfg.learning_rate / max(mean_sq_norm, 1e-12)
    calibration = x[: min(x.shape[0], 256)]
    for _ in range(cfg.epochs):
        # Re-range the sense chain to the growing score swing (the
        # crossbar starts from HRS, so outputs grow during training).
        pair.calibrate_sense(calibration)
        order = rng.permutation(x.shape[0])
        epoch_error = 0.0
        batches = 0
        for start in range(0, x.shape[0], cfg.batch_size):
            idx = order[start : start + cfg.batch_size]
            xb, yb = x[idx], y[idx]
            if iteration % cfg.factor_refresh == 0:
                eff_pos, eff_neg = _update_efficiencies(pair, cfg)
            sensed = pair.matvec(xb, cfg.ir_mode_read)
            err = yb - sensed
            delta_w = (lr / xb.shape[0]) * (xb.T @ err)
            delta_g = 0.5 * delta_w * g_per_w
            pair.positive.update(delta_g, eff_pos)
            pair.negative.update(-delta_g, eff_neg)
            epoch_error += float(np.mean(np.abs(err)))
            batches += 1
            iteration += 1
        epoch_error /= max(batches, 1)
        error_history.append(epoch_error)
        lr *= cfg.lr_decay
        if epoch_error < best_error - 1e-6:
            best_error = epoch_error
            stale_epochs = 0
        else:
            stale_epochs += 1
            if stale_epochs >= cfg.stop_patience:
                break

    scores = pair.matvec(x, cfg.ir_mode_read)
    training_rate = rate_from_scores(scores, labels)
    return TrainingOutcome(
        weights=pair.effective_weights(),
        training_rate=training_rate,
        diagnostics={
            "scheme": "CLD",
            "error_history": error_history,
            "epochs_run": len(error_history),
        },
    )
