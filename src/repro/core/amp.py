"""AMP: adaptive mapping of computations to crossbar rows (Section 4.2).

The hardware half of Vortex.  AMP pre-tests the fabricated crossbar to
learn each device's persistent variation, ranks the weight rows by
their sensitivity (Eq. 11), and assigns them to physical rows so that
high-impact weights land on well-behaved devices (Eq. 12, Algorithm 1).
Redundant rows enlarge the candidate pool; stuck-at defects surface as
extreme measured variations and are avoided the same way.

The assignment is realised without touching the fabric: "switching two
rows in weight matrix together with their inputs does not change the
output of the multiplication" (Fig. 6) -- the input signals are simply
routed to the permuted rows.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.greedy import greedy_mapping, optimal_mapping
from repro.core.pretest import PretestResult, pretest_pair, robust_sigma
from repro.core.sensitivity import mapping_order, row_sensitivity
from repro.core.swv import position_cost, swv_pair
from repro.config import SensingConfig
from repro.xbar.ir_drop import read_attenuation_reference
from repro.xbar.mapping import WeightScaler
from repro.xbar.pair import DifferentialCrossbar

__all__ = [
    "RowMapping",
    "AMPResult",
    "run_amp",
    "effective_sigma",
    "row_read_factors",
]


@dataclasses.dataclass
class RowMapping:
    """A logical-row -> physical-row assignment.

    Attributes:
        assignment: ``assignment[p] = q`` places weight row ``p`` on
            physical row ``q``; entries are distinct.
        n_physical: Total physical rows (>= logical rows; the excess
            are unused redundancy).
    """

    assignment: np.ndarray
    n_physical: int

    def __post_init__(self) -> None:
        a = np.asarray(self.assignment, dtype=int)
        if a.ndim != 1:
            raise ValueError("assignment must be 1-D")
        if len(set(a.tolist())) != a.size:
            raise ValueError("assignment must be injective")
        if a.size > self.n_physical or np.any(a < 0) or np.any(
            a >= self.n_physical
        ):
            raise ValueError("assignment targets outside the physical rows")
        self.assignment = a

    @property
    def n_logical(self) -> int:
        return self.assignment.size

    def weights_to_physical(self, weights: np.ndarray) -> np.ndarray:
        """Scatter logical weight rows onto the physical matrix.

        Unused physical rows get zero weights (their devices idle at
        the ``g_off`` baseline on both arrays).
        """
        w = np.asarray(weights, dtype=float)
        if w.shape[0] != self.n_logical:
            raise ValueError(
                f"weights rows {w.shape[0]} != logical rows {self.n_logical}"
            )
        physical = np.zeros((self.n_physical, w.shape[1]))
        physical[self.assignment] = w
        return physical

    def inputs_to_physical(self, x: np.ndarray) -> np.ndarray:
        """Route logical input features to their physical word lines."""
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        if x.shape[1] != self.n_logical:
            raise ValueError(
                f"input width {x.shape[1]} != logical rows {self.n_logical}"
            )
        physical = np.zeros((x.shape[0], self.n_physical))
        physical[:, self.assignment] = x
        return physical[0] if single else physical


@dataclasses.dataclass
class AMPResult:
    """Outcome of the AMP flow.

    Attributes:
        mapping: The chosen row assignment.
        pretest: Per-device variation estimates that drove it.
        swv: The cost matrix used (``(n_logical, n_physical)``).
        effective_sigma: Residual weighted variation after mapping --
            the quantity VAT's self-tuning consumes in the integrated
            flow (Section 4.3).
    """

    mapping: RowMapping
    pretest: PretestResult
    swv: np.ndarray
    effective_sigma: float


def effective_sigma(
    mapping: RowMapping,
    weights: np.ndarray,
    theta_pos: np.ndarray,
    theta_neg: np.ndarray,
    scaler: WeightScaler | None = None,
) -> float:
    """Weight-magnitude-weighted residual sigma after mapping.

    Collects the *realised* log-multipliers of the devices that carry
    the mapped weights -- bounded by the conductance rails when a
    ``scaler`` is supplied, since a clipped excursion never reaches the
    computation -- and returns their |w|-weighted RMS.  This is the
    effective variation the computation still sees, which is what a
    smaller VAT penalty should budget for after AMP (Section 4.3).
    """
    w = np.asarray(weights, dtype=float)
    q = mapping.assignment
    w_pos = np.maximum(w, 0.0)
    w_neg = np.maximum(-w, 0.0)
    t_pos = np.asarray(theta_pos)[q, :]
    t_neg = np.asarray(theta_neg)[q, :]
    weight_mass = w_pos.sum() + w_neg.sum()
    if weight_mass <= 0:
        return robust_sigma(np.concatenate([t_pos.ravel(), t_neg.ravel()]))
    if scaler is not None:
        w_peak = float(np.max(np.abs(w)))
        scale = 1.0 / w_peak if w_peak > 0 else 1.0
        d = scaler.device
        thetas = []
        for mag, theta in ((w_pos, t_pos), (w_neg, t_neg)):
            g = d.g_off + np.clip(mag * scale, 0.0, 1.0) * d.g_range
            g_actual = np.clip(g * np.exp(theta), d.g_off, d.g_on)
            thetas.append(np.log(g_actual / g))
        t_pos, t_neg = thetas
    weighted_sq = np.sum(w_pos * t_pos**2) + np.sum(w_neg * t_neg**2)
    return float(np.sqrt(weighted_sq / weight_mass))


def row_read_factors(
    pair: DifferentialCrossbar,
    weights: np.ndarray,
    x_mean: np.ndarray,
) -> np.ndarray:
    """Mean read delivery factor of each physical row.

    Estimated at a representative uniform loading (the mean absolute
    mapped weight spread over all physical rows) so the factors depend
    only on the geometry and wire resistance, not on a particular
    mapping.  Returns all-ones when the crossbar has no wire
    resistance.
    """
    n_physical = pair.shape[0]
    r_wire = pair.config.r_wire
    if r_wire == 0:
        return np.ones(n_physical)
    device = pair.positive.device
    scaler = pair.scaler
    w = np.asarray(weights, dtype=float)
    mean_mag = float(np.mean(np.abs(w)))
    g_uniform = np.full(
        pair.shape,
        device.g_off + min(mean_mag / scaler.w_max, 1.0) * device.g_range,
    )
    drive = float(np.mean(x_mean)) if np.mean(x_mean) > 0 else 0.5
    factors = read_attenuation_reference(
        g_uniform, np.full(n_physical, drive), r_wire,
        pair.config.v_read,
    )
    return factors.mean(axis=1)


def run_amp(
    pair: DifferentialCrossbar,
    weights: np.ndarray,
    x_mean: np.ndarray,
    sensing: SensingConfig | None = None,
    method: str = "greedy",
    rng: np.random.Generator | None = None,
    pretest: PretestResult | None = None,
    position_weight: float = 0.0,
) -> AMPResult:
    """Run the full AMP flow on a fabricated pair.

    Args:
        pair: Fabricated differential crossbar (possibly with more
            physical rows than ``weights`` has logical rows -- the
            redundancy of Section 5.3).
        weights: Signed weight matrix ``(n_logical, m)``.
        x_mean: Mean input activity per logical feature (Eq. 11 needs
            the expected drive).
        sensing: Pre-test ADC resolution and repeats.
        method: ``'greedy'`` (Algorithm 1) or ``'optimal'``
            (Hungarian assignment).
        rng: Readout-noise randomness for the pre-test.
        pretest: Reuse an existing pre-test instead of re-measuring.
        position_weight: Trade-off weight of the read-path position
            penalty (see :func:`repro.core.swv.position_cost`); 0
            reproduces the paper's Algorithm 1 exactly, > 0 makes the
            mapping IR-position-aware (only meaningful when reads are
            IR-modelled).

    Returns:
        An :class:`AMPResult`; apply ``result.mapping`` to both the
        weights (before programming) and the inputs (at run time).
    """
    weights = np.asarray(weights, dtype=float)
    if weights.shape[1] != pair.shape[1]:
        raise ValueError(
            f"weights have {weights.shape[1]} columns, pair has "
            f"{pair.shape[1]}"
        )
    if weights.shape[0] > pair.shape[0]:
        raise ValueError(
            f"{weights.shape[0]} weight rows exceed {pair.shape[0]} "
            "physical rows"
        )
    if position_weight < 0:
        raise ValueError(
            f"position_weight must be >= 0, got {position_weight}"
        )
    if pretest is None:
        pretest = pretest_pair(pair, sensing, rng=rng)
    swv = swv_pair(weights, pretest.theta_pos, pretest.theta_neg, pair.scaler)
    if position_weight > 0:
        factors = row_read_factors(pair, weights, x_mean)
        swv = swv + position_weight * position_cost(
            row_sensitivity(weights, x_mean), factors
        )
    order = mapping_order(weights, x_mean)
    if method == "greedy":
        assignment = greedy_mapping(swv, order)
    elif method == "optimal":
        assignment = optimal_mapping(swv)
    else:
        raise ValueError(f"method must be 'greedy' or 'optimal', got {method!r}")
    mapping = RowMapping(assignment=assignment, n_physical=pair.shape[0])
    sigma_eff = effective_sigma(
        mapping, weights, pretest.theta_pos, pretest.theta_neg,
        scaler=pair.scaler,
    )
    return AMPResult(
        mapping=mapping,
        pretest=pretest,
        swv=swv,
        effective_sigma=sigma_eff,
    )
