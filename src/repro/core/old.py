"""OLD: open-loop off-device training (Section 2.2.3).

The baseline the paper improves on: train the network in software with
conventional GDT, pre-calculate the programming signals from the
nominal switching model, program every device once, and never look
back.  Cheap -- no feedback control, no high-resolution ADC in the
loop -- but blind to device variations, which corrupt the programmed
weights multiplicatively (Section 3.1).

Because the wire resistance is known at design time, OLD *can*
compensate the deterministic part of the IR-drop in the pre-calculation
stage (the paper cites the authors' ICCAD'14 techniques); this module
implements that compensation for the read path by pre-dividing the
conductance targets by the predicted attenuation factors.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.base import TrainingOutcome
from repro.core.vat import VATConfig, train_vat
from repro.nn.gdt import GDTConfig
from repro.xbar.ir_drop import program_factors, read_output_currents
from repro.xbar.mapping import WeightScaler
from repro.xbar.pair import DifferentialCrossbar
from repro.xbar.programming import execute_plan, plan_programming

__all__ = [
    "OLDConfig",
    "train_old",
    "program_pair_open_loop",
    "program_pair_physical",
]


@dataclasses.dataclass(frozen=True)
class OLDConfig:
    """OLD hyper-parameters.

    Attributes:
        gdt: Software-trainer settings.
        compensate_ir_drop: Pre-divide conductance targets by the
            predicted read-path attenuation (the [10] technique).
        compensation_iterations: Fixed-point rounds of the target
            correction.
        normalize_weights: Rescale the weight matrix to span the full
            representable range ``[-w_max, w_max]`` before programming.
            A uniform positive rescaling leaves the argmax decision
            unchanged while using the whole conductance range, which is
            how a real mapping stage sizes the weights to the devices.
        digital_calibration: After programming, auto-range the sense
            chain and fit per-column digital gain corrections against
            the intended weights (the read-path half of the [10]
            IR-drop compensation).  Only engaged when the crossbar has
            wire resistance.
    """

    gdt: GDTConfig = dataclasses.field(default_factory=GDTConfig)
    compensate_ir_drop: bool = True
    compensation_iterations: int = 2
    normalize_weights: bool = True
    digital_calibration: bool = True


def train_old(
    x: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
    config: OLDConfig | None = None,
) -> TrainingOutcome:
    """Software training stage of OLD (conventional GDT, Eq. 3).

    Identical to VAT with ``gamma = 0``: the open-loop baseline has no
    variation awareness.
    """
    cfg = config if config is not None else OLDConfig()
    vat_cfg = VATConfig(gamma=0.0, sigma=0.0, gdt=cfg.gdt)
    outcome = train_vat(x, labels, n_classes, vat_cfg)
    outcome.diagnostics["scheme"] = "OLD"
    return outcome


def _compensated_targets(
    target_g: np.ndarray,
    x_reference: np.ndarray,
    r_wire: float,
    v_read: float,
    g_off: float,
    g_on: float,
    iterations: int,
) -> np.ndarray:
    """Pre-divide targets by the predicted per-column read attenuation.

    To first order the IR-drop acts as a per-column gain error: the
    bit-line potential rise is driven by the *total* column current, so
    every cell of a column loses roughly the same fraction of its
    contribution.  A per-column conductance boost therefore compensates
    robustly across inputs, whereas a per-cell correction would divide
    by near-zero factors on rarely-driven rows and blow their
    conductances to the rail.
    """
    x_ref = np.asarray(x_reference, dtype=float)
    desired = v_read * (x_ref @ target_g)
    if np.any(desired <= 0):
        return target_g.copy()

    # Per-column boost factors, iterated toward read(g) == desired and
    # capped: at heavy loading the attenuation itself grows with the
    # boost, so an unbounded correction diverges.  The best iterate is
    # kept, which guarantees the compensation never does worse than
    # programming the raw targets.
    boost = np.ones(target_g.shape[1])
    best_g = target_g.copy()
    best_err = np.inf
    for _ in range(max(1, iterations) + 2):
        g_c = np.clip(target_g * boost[None, :], g_off, g_on)
        achieved = read_output_currents(g_c, x_ref, r_wire, v_read)
        ratio = achieved / desired
        err = float(np.max(np.abs(ratio - 1.0)))
        if err < best_err:
            best_err = err
            best_g = g_c
        boost = np.clip(boost / np.clip(ratio, 0.2, 2.0), 1.0, 5.0)
    return best_g


def _calibration_probes(
    x_reference: np.ndarray,
    count: int = 64,
    seed: int = 0,
) -> np.ndarray:
    """Deterministic calibration input batch around a reference profile.

    Real deployments drive known test vectors; here the probes are the
    reference activity profile modulated by reproducible random masks,
    which excites every column with workload-like statistics.
    """
    rng = np.random.default_rng(seed)
    masks = rng.uniform(0.2, 1.8, size=(count, x_reference.size))
    return np.clip(masks * x_reference[None, :], 0.0, 1.0)


def program_pair_open_loop(
    pair: DifferentialCrossbar,
    weights: np.ndarray,
    config: OLDConfig | None = None,
    x_reference: np.ndarray | None = None,
    x_calibration: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One-shot open-loop programming of a differential pair.

    Args:
        pair: Fabricated pair to program; its variation corrupts the
            result (the planner cannot see it).
        weights: Signed target weights, shape ``pair.shape``.
        config: Compensation settings.
        x_reference: Input statistics for the read-path IR-drop
            compensation; mean 0.5 activity assumed when omitted.
        x_calibration: Calibration input batch for the post-programming
            digital gain fit; synthesised from ``x_reference`` when
            omitted.

    Returns:
        The ``(g_pos, g_neg)`` conductance targets actually issued
        (IR-compensation included), so callers can persist or re-issue
        the exact programming later (artifact snapshots, drift-repair
        reprogramming in :mod:`repro.serve`).
    """
    cfg = config if config is not None else OLDConfig()
    scaler: WeightScaler = pair.scaler
    weights = np.asarray(weights, dtype=float)
    if cfg.normalize_weights:
        w_peak = float(np.max(np.abs(weights)))
        if w_peak > 0:
            weights = weights * (scaler.w_max / w_peak)
    g_pos, g_neg = scaler.weights_to_pair(weights)
    r_wire = pair.config.r_wire
    if x_reference is None:
        x_reference = np.full(pair.shape[0], 0.5)
    if cfg.compensate_ir_drop and r_wire > 0:
        device = pair.positive.device
        g_pos = _compensated_targets(
            g_pos, x_reference, r_wire, pair.config.v_read,
            device.g_off, device.g_on, cfg.compensation_iterations,
        )
        g_neg = _compensated_targets(
            g_neg, x_reference, r_wire, pair.config.v_read,
            device.g_off, device.g_on, cfg.compensation_iterations,
        )
    pair.program_conductances(g_pos, g_neg)
    if cfg.digital_calibration and r_wire > 0:
        if x_calibration is None:
            x_calibration = _calibration_probes(np.asarray(x_reference))
        pair.set_reference_input(np.asarray(x_reference, dtype=float))
        pair.calibrate_sense(x_calibration)
        pair.calibrate_digital_gains(x_calibration, weights, "reference")
    return g_pos, g_neg


def program_pair_physical(
    pair: DifferentialCrossbar,
    weights: np.ndarray,
    config: OLDConfig | None = None,
    compensate_program_ir: bool = True,
) -> None:
    """Physically pre-calculate and apply programming pulses.

    The fully mechanistic alternative to the abstract
    ``g = g_target * exp(theta)`` landing model of
    :func:`program_pair_open_loop`: pulse widths are pre-calculated
    from the *nominal* switching model (Section 2.2.2), optionally
    stretched for the predicted programming-time IR-drop, and then
    integrated by devices whose actual switching rates carry the
    persistent per-device multiplier ``exp(theta)``.  The landing
    error therefore emerges from the pulse dynamics instead of being
    postulated; the test suite shows the two paths produce errors that
    correlate device-by-device.

    Args:
        pair: Fabricated pair; both arrays are erased to HRS first
            (open-loop flows program from a known state).
        weights: Signed target weights, shape ``pair.shape``;
            normalised to the representable range when the config asks
            for it.
        config: Normalisation settings (compensation fields of the
            read path do not apply here).
        compensate_program_ir: Stretch pulses for the delivered-voltage
            degradation predicted from the target state (the [10]
            pre-calculation compensation).
    """
    cfg = config if config is not None else OLDConfig()
    scaler: WeightScaler = pair.scaler
    weights = np.asarray(weights, dtype=float)
    if cfg.normalize_weights:
        w_peak = float(np.max(np.abs(weights)))
        if w_peak > 0:
            weights = weights * (scaler.w_max / w_peak)
    g_targets = scaler.weights_to_pair(weights)
    r_wire = pair.config.r_wire
    for xbar, target in zip((pair.positive, pair.negative), g_targets):
        array = xbar.array
        array.reset_to_hrs()
        plan = plan_programming(
            array.switching, array.state, target,
            r_wire=r_wire,
            compensate_ir_drop=compensate_program_ir and r_wire > 0,
        )
        if r_wire > 0:
            factors = program_factors(
                target, r_wire, array.device.v_set
            ).combined
        else:
            factors = 1.0
        execute_plan(array, plan, delivered_factors=factors)
    pair.digital_gains = None
