"""Summed weighted variations (Section 4.2.2, Eq. 12).

``SWV_pq`` measures the damage of storing weight row ``p`` on physical
crossbar row ``q``:

    SWV_pq = sum_j |w_pj * (1 - e^theta_qj)|          (Eq. 12)

For the differential pair, each signed weight lives in either the
positive or the negative array, and even a zero weight leaves both
devices programmed at the ``g_off`` baseline whose own variation leaks
through; the pair form therefore sums three terms:

    SWV_pq = sum_j ( w+_pj * P+_qj  +  w-_pj * P-_qj
                     + c * (P+_qj + P-_qj) )

with ``P = |1 - e^theta|`` and ``c = g_off * w_max / (g_on - g_off)``
the weight-equivalent of the baseline conductance.  All terms are
non-negative, so the sum is computable as two matrix products -- the
same triangle-style accumulation Eq. 12 itself uses.
"""

from __future__ import annotations

import numpy as np

from repro.xbar.mapping import WeightScaler, split_signed

__all__ = [
    "swv_single",
    "swv_pair",
    "position_cost",
    "clipped_weight_error",
]


def swv_single(weights: np.ndarray, theta: np.ndarray) -> np.ndarray:
    """Paper-exact single-array SWV matrix (Eq. 12).

    Args:
        weights: Weight matrix ``(n_logical, m)``.
        theta: Per-device variation of the crossbar, ``(n_phys, m)``.

    Returns:
        SWV matrix of shape ``(n_logical, n_phys)``.
    """
    w = np.asarray(weights, dtype=float)
    t = np.asarray(theta, dtype=float)
    if w.ndim != 2 or t.ndim != 2 or w.shape[1] != t.shape[1]:
        raise ValueError(
            f"weights {w.shape} and theta {t.shape} must share column count"
        )
    penalty = np.abs(1.0 - np.exp(t))  # (n_phys, m)
    return np.abs(w) @ penalty.T


def clipped_weight_error(
    magnitude_fraction: np.ndarray | float,
    theta: np.ndarray,
    scaler: WeightScaler,
) -> np.ndarray:
    """Realised |weight error| including the conductance rails.

    A device programmed toward ``g = g_off + u * (g_on - g_off)`` with
    multiplier ``exp(theta)`` lands at ``clip(g * e^theta)``; the
    represented-weight error (in ``w_max`` units of the normalised
    magnitude ``u``) is therefore *bounded by the rails*.  This matters
    at large sigma: a strongly positive theta on a near-full-scale
    weight clips harmlessly at ``g_on``, while a negative theta shrinks
    the weight without bound toward ``-u``.  The raw Eq. 12 penalty
    ``|w| * |1 - e^theta|`` misses this asymmetry and can invert the
    row ranking.

    Args:
        magnitude_fraction: Normalised magnitudes ``u`` in [0, 1].
        theta: Device log-multipliers (broadcastable against ``u``).
        scaler: Weight <-> conductance map.

    Returns:
        Absolute weight errors in the scaler's weight units.
    """
    d = scaler.device
    u = np.clip(np.asarray(magnitude_fraction, dtype=float), 0.0, 1.0)
    g = d.g_off + u * d.g_range
    g_actual = np.clip(g * np.exp(theta), d.g_off, d.g_on)
    return np.abs(g_actual - g) * scaler.w_max / d.g_range


def swv_pair(
    weights: np.ndarray,
    theta_pos: np.ndarray,
    theta_neg: np.ndarray,
    scaler: WeightScaler,
    clip_aware: bool = True,
    magnitude_bins: int = 8,
) -> np.ndarray:
    """Differential-pair SWV matrix.

    Args:
        weights: Signed weight matrix ``(n_logical, m)``; internally
            normalised to the scaler's full range, mirroring the
            programming stage.
        theta_pos: Variation estimates of the positive array,
            ``(n_phys, m)``.
        theta_neg: Variation estimates of the negative array,
            ``(n_phys, m)``.
        scaler: Weight <-> conductance map (supplies the ``g_off``
            baseline term and the rails).
        clip_aware: Use the rail-bounded error model (see
            :func:`clipped_weight_error`); ``False`` gives the plain
            Eq. 12 triangle accumulation.
        magnitude_bins: Weight magnitudes are quantised into this many
            bins so the clip-aware cost stays a handful of matrix
            products.

    Returns:
        SWV matrix of shape ``(n_logical, n_phys)``.
    """
    w = np.asarray(weights, dtype=float)
    tp = np.asarray(theta_pos, dtype=float)
    tn = np.asarray(theta_neg, dtype=float)
    if tp.shape != tn.shape or w.shape[1] != tp.shape[1]:
        raise ValueError("theta maps must match and share columns with W")
    w_pos, w_neg = split_signed(w)
    d = scaler.device

    if not clip_aware:
        p_pos = np.abs(1.0 - np.exp(tp))
        p_neg = np.abs(1.0 - np.exp(tn))
        baseline = d.g_off * scaler.w_max / d.g_range
        swv = w_pos @ p_pos.T + w_neg @ p_neg.T
        swv += baseline * (
            p_pos.sum(axis=1) + p_neg.sum(axis=1)
        )[None, :]
        return swv

    if magnitude_bins < 1:
        raise ValueError(
            f"magnitude_bins must be >= 1, got {magnitude_bins}"
        )
    # Normalise like the programming stage: the peak |w| spans the
    # conductance range.
    w_peak = float(np.max(np.abs(w)))
    scale = 1.0 / w_peak if w_peak > 0 else 1.0
    u_pos = np.clip(w_pos * scale, 0.0, 1.0)
    u_neg = np.clip(w_neg * scale, 0.0, 1.0)

    edges = np.linspace(0.0, 1.0, magnitude_bins + 1)
    centres = 0.5 * (edges[:-1] + edges[1:])
    centres[0] = 0.0  # the zero-weight bin sits at the g_off baseline
    swv = np.zeros((w.shape[0], tp.shape[0]))
    for u_map, theta in ((u_pos, tp), (u_neg, tn)):
        # The epsilon absorbs the half-ulp wobble of u = |w| / peak
        # under a global weight rescaling: a magnitude sitting exactly
        # on a bin edge must land in the same bin at every scale.
        bin_idx = np.minimum(
            (u_map * magnitude_bins + 1e-6).astype(int), magnitude_bins - 1
        )
        for k in range(magnitude_bins):
            mask = (bin_idx == k).astype(float)
            if not mask.any():
                continue
            err_k = clipped_weight_error(centres[k], theta, scaler)
            swv += mask @ err_k.T
    return swv


def position_cost(
    row_sensitivity: np.ndarray, row_read_factors: np.ndarray
) -> np.ndarray:
    """Extension beyond Eq. 12: physical-row position penalty.

    When the read path itself suffers IR-drop, a physical row far from
    the bit-line driver delivers an attenuated contribution; placing a
    high-sensitivity weight row there loses signal even on perfect
    devices.  The cost of placing logical row ``p`` on physical row
    ``q`` is the sensitivity-weighted attenuation

        cost_pq = s_p * (1 - f_q)

    with ``s_p`` the Eq. 11 row sensitivity and ``f_q`` the mean read
    delivery factor of physical row ``q``.  Added to the SWV matrix
    (scaled by a trade-off weight) this makes AMP place important rows
    both on well-behaved devices *and* near the driver -- one of the
    "other optimization algorithms" the paper's Section 4.2.2 invites.

    Args:
        row_sensitivity: Eq. 11 sensitivities, shape ``(n_logical,)``.
        row_read_factors: Per-physical-row mean read attenuation
            factors in (0, 1], shape ``(n_physical,)``.

    Returns:
        Cost matrix of shape ``(n_logical, n_physical)``.
    """
    s = np.asarray(row_sensitivity, dtype=float)
    f = np.asarray(row_read_factors, dtype=float)
    if s.ndim != 1 or f.ndim != 1:
        raise ValueError("sensitivities and factors must be 1-D")
    if np.any(f <= 0) or np.any(f > 1 + 1e-12):
        raise ValueError("read factors must lie in (0, 1]")
    return np.outer(s, 1.0 - f)
