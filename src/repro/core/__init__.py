"""The paper's contribution: VAT, AMP, self-tuning, OLD/CLD baselines,
and the integrated Vortex pipeline."""

from repro.core.amp import (
    AMPResult,
    RowMapping,
    effective_sigma,
    row_read_factors,
    run_amp,
)
from repro.core.base import (
    HardwareSpec,
    TrainingOutcome,
    build_pair,
    hardware_test_rate,
    software_rates,
)
from repro.core.cld import CLDConfig, train_cld
from repro.core.greedy import greedy_mapping, identity_mapping, optimal_mapping
from repro.core.old import (
    OLDConfig,
    program_pair_open_loop,
    program_pair_physical,
    train_old,
)
from repro.core.pretest import (
    PretestResult,
    pretest_array,
    pretest_pair,
    robust_sigma,
)
from repro.core.self_tuning import (
    GammaScanPoint,
    SelfTuningConfig,
    TuneResult,
    injected_rate,
    tune_gamma,
)
from repro.core.sensitivity import cell_sensitivity, mapping_order, row_sensitivity
from repro.core.swv import position_cost, swv_pair, swv_single
from repro.core.vat import VATConfig, train_vat
from repro.core.vortex import VortexConfig, VortexResult, run_vortex
from repro.core.write_verify import (
    WriteVerifyConfig,
    WriteVerifyStats,
    program_pair_write_verify,
)

__all__ = [
    "AMPResult",
    "CLDConfig",
    "GammaScanPoint",
    "HardwareSpec",
    "OLDConfig",
    "PretestResult",
    "RowMapping",
    "SelfTuningConfig",
    "TrainingOutcome",
    "TuneResult",
    "VATConfig",
    "VortexConfig",
    "VortexResult",
    "WriteVerifyConfig",
    "WriteVerifyStats",
    "build_pair",
    "cell_sensitivity",
    "effective_sigma",
    "greedy_mapping",
    "hardware_test_rate",
    "identity_mapping",
    "injected_rate",
    "mapping_order",
    "optimal_mapping",
    "position_cost",
    "pretest_array",
    "pretest_pair",
    "program_pair_open_loop",
    "program_pair_physical",
    "program_pair_write_verify",
    "robust_sigma",
    "row_read_factors",
    "row_sensitivity",
    "run_amp",
    "run_vortex",
    "software_rates",
    "swv_pair",
    "swv_single",
    "train_cld",
    "train_old",
    "train_vat",
    "tune_gamma",
]
