"""Benchmark dataset assembly: the paper's 4000-train / 2000-test task.

One call builds the full classification benchmark: balanced labels,
rendered images, flattened features, and (optionally) the bias feature
row the crossbar realises as an always-on input.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.data.mnist_like import IMAGE_SIZE, DigitRenderer, RenderParams
from repro.data.sampling import undersample_flat
from repro.nn.linear import add_bias_feature

__all__ = ["Dataset", "make_dataset", "N_CLASSES"]

N_CLASSES = 10


@dataclasses.dataclass
class Dataset:
    """A rendered classification benchmark.

    Attributes:
        x_train: Training features ``(s_train, n)`` in [0, 1].
        y_train: Training labels ``(s_train,)``.
        x_test: Test features ``(s_test, n)``.
        y_test: Test labels ``(s_test,)``.
        image_size: Side length of the (square) source images.
        with_bias: Whether a constant bias feature was appended (the
            crossbar's always-on row); if so ``n = size^2 + 1``.
    """

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    image_size: int
    with_bias: bool

    @property
    def n_features(self) -> int:
        return self.x_train.shape[1]

    def undersampled(self, target: int) -> "Dataset":
        """A copy of the dataset pooled to ``target x target`` images."""
        size = self.image_size

        def pool(x: np.ndarray) -> np.ndarray:
            pixels = x[:, : size * size]
            pooled = undersample_flat(pixels, size, target)
            if self.with_bias:
                return add_bias_feature(pooled)
            return pooled

        return Dataset(
            x_train=pool(self.x_train),
            y_train=self.y_train.copy(),
            x_test=pool(self.x_test),
            y_test=self.y_test.copy(),
            image_size=target,
            with_bias=self.with_bias,
        )


def _balanced_labels(count: int, rng: np.random.Generator) -> np.ndarray:
    """Labels covering all classes as evenly as ``count`` allows."""
    reps = int(np.ceil(count / N_CLASSES))
    labels = np.tile(np.arange(N_CLASSES), reps)[:count]
    return rng.permutation(labels)


def make_dataset(
    n_train: int = 4000,
    n_test: int = 2000,
    seed: int = 7,
    params: RenderParams | None = None,
    with_bias: bool = False,
) -> Dataset:
    """Render the synthetic benchmark used throughout the experiments.

    Args:
        n_train: Training-sample count (the paper uses 4000).
        n_test: Test-sample count (the paper uses 2000).
        seed: Seed for labels and rendering; the same seed always
            produces the identical corpus.
        params: Distortion magnitudes; defaults match DESIGN.md's
            calibration.
        with_bias: Append the constant bias feature.  Off by default so
            a 28x28 benchmark occupies exactly the paper's 784x10
            crossbar.

    Returns:
        A :class:`Dataset` with 28x28 source images.
    """
    if n_train < 1 or n_test < 1:
        raise ValueError("n_train and n_test must be positive")
    rng = np.random.default_rng(seed)
    renderer = DigitRenderer(params, rng)
    y_train = _balanced_labels(n_train, rng)
    y_test = _balanced_labels(n_test, rng)
    x_train = renderer.render_batch(y_train)
    x_test = renderer.render_batch(y_test)
    if with_bias:
        x_train = add_bias_feature(x_train)
        x_test = add_bias_feature(x_test)
    return Dataset(
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        image_size=IMAGE_SIZE,
        with_bias=with_bias,
    )
