"""Synthetic MNIST-like digit rendering.

Renders the glyph prototypes of :mod:`repro.data.glyphs` into 28x28
grey-scale images with randomised affine distortion (rotation, shear,
scale, translation), stroke-width modulation, Gaussian blur and pixel
noise.  The distortion levels are tuned so that a software linear
one-vs-all classifier reaches the mid-80s test accuracy the paper
identifies as "the theoretical maximum test rate in this configuration"
(Section 5.3) -- the operating point all of its experiments live at.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import ndimage

from repro.data.glyphs import GLYPH_COLS, GLYPH_ROWS, glyph_bitmaps
from repro.seeding import ensure_rng

__all__ = ["RenderParams", "DigitRenderer", "IMAGE_SIZE"]

IMAGE_SIZE = 28


@dataclasses.dataclass(frozen=True)
class RenderParams:
    """Distortion magnitudes for the synthetic digit renderer.

    Attributes:
        rotation_deg: Max |rotation| in degrees.
        shear: Max |shear| coefficient.
        scale_low: Lower bound of the isotropic scale factor.
        scale_high: Upper bound of the isotropic scale factor.
        shift_px: Max |translation| in output pixels, per axis.
        thicken_prob: Probability of dilating the stroke by one pixel.
        thin_prob: Probability of eroding the stroke by one pixel.
        blur_sigma: Gaussian blur standard deviation in pixels.
        noise_std: Additive Gaussian pixel-noise standard deviation.
        occlusion_prob: Probability of blanking a small random patch.
    """

    rotation_deg: float = 12.0
    shear: float = 0.15
    scale_low: float = 0.87
    scale_high: float = 1.18
    shift_px: float = 2.0
    thicken_prob: float = 0.3
    thin_prob: float = 0.12
    blur_sigma: float = 0.75
    noise_std: float = 0.07
    occlusion_prob: float = 0.1


class DigitRenderer:
    """Deterministic (seeded) synthetic digit generator.

    Args:
        params: Distortion magnitudes.
        rng: Random generator; every draw consumed by the renderer
            comes from it, so one seed reproduces the whole corpus.
    """

    def __init__(
        self,
        params: RenderParams | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.params = params if params is not None else RenderParams()
        self.rng = ensure_rng(rng, "repro.data.mnist_like.DigitRenderer")
        self._bitmaps = glyph_bitmaps()

    # ------------------------------------------------------------------
    def render(self, digit: int) -> np.ndarray:
        """One distorted 28x28 image of ``digit``, values in [0, 1]."""
        if digit not in self._bitmaps:
            raise ValueError(f"digit must be in 0..9, got {digit}")
        p = self.params
        rng = self.rng
        variants = self._bitmaps[digit]
        glyph = variants[rng.integers(len(variants))]

        # Place the glyph on the 28x28 canvas, centred.
        canvas = np.zeros((IMAGE_SIZE, IMAGE_SIZE))
        r0 = (IMAGE_SIZE - GLYPH_ROWS) // 2
        c0 = (IMAGE_SIZE - GLYPH_COLS) // 2
        canvas[r0 : r0 + GLYPH_ROWS, c0 : c0 + GLYPH_COLS] = glyph

        # Stroke-width modulation before the affine warp.
        u = rng.random()
        if u < p.thicken_prob:
            canvas = ndimage.grey_dilation(canvas, size=(2, 2))
        elif u < p.thicken_prob + p.thin_prob:
            canvas = ndimage.grey_erosion(canvas, size=(2, 2))

        # Random affine: rotation + shear + anisotropy-free scale.
        angle = np.deg2rad(rng.uniform(-p.rotation_deg, p.rotation_deg))
        shear = rng.uniform(-p.shear, p.shear)
        scale = rng.uniform(p.scale_low, p.scale_high)
        cos_a, sin_a = np.cos(angle), np.sin(angle)
        rot = np.array([[cos_a, -sin_a], [sin_a, cos_a]])
        shear_m = np.array([[1.0, shear], [0.0, 1.0]])
        matrix = (rot @ shear_m) / scale
        centre = np.array([(IMAGE_SIZE - 1) / 2.0] * 2)
        shift = rng.uniform(-p.shift_px, p.shift_px, size=2)
        offset = centre - matrix @ (centre + shift)
        warped = ndimage.affine_transform(
            canvas, matrix, offset=offset, order=1, mode="constant"
        )

        # Optics: blur, occlusion, pixel noise.
        if p.blur_sigma > 0:
            warped = ndimage.gaussian_filter(warped, p.blur_sigma)
        if rng.random() < p.occlusion_prob:
            size = rng.integers(2, 5)
            rr = rng.integers(0, IMAGE_SIZE - size)
            cc = rng.integers(0, IMAGE_SIZE - size)
            warped[rr : rr + size, cc : cc + size] = 0.0
        if p.noise_std > 0:
            warped = warped + rng.normal(0.0, p.noise_std, warped.shape)
        return np.clip(warped, 0.0, 1.0)

    # ------------------------------------------------------------------
    def render_batch(
        self, digits: np.ndarray, flatten: bool = True
    ) -> np.ndarray:
        """Images for an array of digit labels.

        Args:
            digits: Integer labels, shape ``(s,)``.
            flatten: Return ``(s, 784)`` instead of ``(s, 28, 28)``.
        """
        digits = np.asarray(digits)
        images = np.stack([self.render(int(d)) for d in digits])
        if flatten:
            return images.reshape(digits.size, -1)
        return images
