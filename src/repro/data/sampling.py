"""Image under-sampling for the crossbar-size experiments.

Section 5.4 scales the classifier to smaller crossbars by sampling the
benchmark images from 28x28 down to 14x14 and 7x7 pixels ("Benchmark
may need to be under-sampled to fit into the memristor crossbars with
difference sizes").  Block-average pooling is the natural model of the
analog down-sampling front-end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["undersample", "undersample_flat", "valid_sizes"]


def valid_sizes(original: int = 28) -> tuple[int, ...]:
    """Target sizes the paper uses for a 28-pixel original."""
    return (original, original // 2, original // 4)


def undersample(images: np.ndarray, target: int) -> np.ndarray:
    """Block-average pooling of square images to ``target x target``.

    Args:
        images: Array of shape ``(s, d, d)`` (or a single ``(d, d)``).
        target: Output side length; must divide ``d``.

    Returns:
        Pooled images of shape ``(s, target, target)``.
    """
    images = np.asarray(images, dtype=float)
    single = images.ndim == 2
    if single:
        images = images[None]
    if images.ndim != 3 or images.shape[1] != images.shape[2]:
        raise ValueError("images must be square, shape (s, d, d)")
    d = images.shape[1]
    if target < 1 or d % target != 0:
        raise ValueError(f"target {target} must divide image size {d}")
    block = d // target
    pooled = images.reshape(-1, target, block, target, block).mean(axis=(2, 4))
    return pooled[0] if single else pooled


def undersample_flat(x: np.ndarray, original: int, target: int) -> np.ndarray:
    """Under-sample flattened feature vectors.

    Args:
        x: Features of shape ``(s, original*original)`` or
            ``(original*original,)``.
        original: Source side length.
        target: Output side length (divides ``original``).

    Returns:
        Flattened pooled features, ``(s, target*target)``.
    """
    x = np.asarray(x, dtype=float)
    single = x.ndim == 1
    if single:
        x = x[None]
    if x.shape[1] != original * original:
        raise ValueError(
            f"feature width {x.shape[1]} != {original}*{original}"
        )
    images = x.reshape(-1, original, original)
    pooled = undersample(images, target).reshape(x.shape[0], -1)
    return pooled[0] if single else pooled
