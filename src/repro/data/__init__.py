"""Dataset substrate: synthetic MNIST-like benchmark and under-sampling."""

from repro.data.datasets import N_CLASSES, Dataset, make_dataset
from repro.data.glyphs import GLYPH_COLS, GLYPH_ROWS, GLYPHS, glyph_bitmaps
from repro.data.mnist_like import IMAGE_SIZE, DigitRenderer, RenderParams
from repro.data.sampling import undersample, undersample_flat, valid_sizes

__all__ = [
    "GLYPHS",
    "GLYPH_COLS",
    "GLYPH_ROWS",
    "IMAGE_SIZE",
    "N_CLASSES",
    "Dataset",
    "DigitRenderer",
    "RenderParams",
    "glyph_bitmaps",
    "make_dataset",
    "undersample",
    "undersample_flat",
    "valid_sizes",
]
