"""Fast IR-drop models: ladder solves and the paper's beta/D decomposition.

Section 3.2 of the paper decomposes the two-dimensional IR-drop pattern
of a crossbar (Fig. 3b) into a *horizontal* component -- which only
rescales the effective learning step of close-loop training by a factor
``beta < 1`` -- and a *vertical* component -- a diagonal matrix ``D``
whose entries skew the convergence direction of gradient-descent
training (Eq. 2).  This module computes both components exactly for the
1-D sub-problems:

* each bit line (column) in isolation is a resistive *ladder network*
  that can be solved with a tridiagonal system in O(n);
* each word line (row) is the same structure transposed.

It also provides the read-time attenuation model used during inference:
a fixed-point refinement of the first-order wire-drop estimate, which
agrees with the full nodal solver (:mod:`repro.xbar.nodal`) to a small
relative error at a tiny fraction of its cost.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.linalg import solve_banded

__all__ = [
    "IRDropDecomposition",
    "column_ladder_solve",
    "program_column_factors",
    "program_row_factors",
    "program_factors",
    "read_output_currents",
    "read_attenuation_reference",
]


# ----------------------------------------------------------------------
# tridiagonal ladder primitives
# ----------------------------------------------------------------------
def _ladder_banded(g_devices: np.ndarray, g_wire: float) -> np.ndarray:
    """Banded (ab) representation of the ladder system matrix.

    Nodes ``0 .. n-1`` along one wire; node ``i`` connects to a fixed
    external potential through ``g_devices[i]``, to its neighbours
    through ``g_wire``, and node ``n-1`` to the wire driver through an
    extra ``g_wire`` segment.
    """
    n = g_devices.size
    diag = g_devices + 2.0 * g_wire
    diag[0] = g_devices[0] + g_wire  # no neighbour above the first node
    # last node keeps 2*g_wire: one neighbour + the driver termination
    ab = np.zeros((3, n))
    ab[0, 1:] = -g_wire
    ab[1, :] = diag
    ab[2, :-1] = -g_wire
    return ab


def column_ladder_solve(
    g_devices: np.ndarray,
    potentials: np.ndarray,
    r_wire: float,
    v_term: float = 0.0,
) -> np.ndarray:
    """Node voltages of one wire ladder.

    Args:
        g_devices: Device conductances hanging off the wire, ``(n,)``.
        potentials: Fixed potentials on the far side of each device.
        r_wire: Wire segment resistance (> 0).
        v_term: Driver voltage at the terminated end (node ``n-1``).

    Returns:
        Wire node voltages, shape ``(n,)``.
    """
    g_devices = np.asarray(g_devices, dtype=float)
    potentials = np.asarray(potentials, dtype=float)
    if g_devices.ndim != 1 or g_devices.shape != potentials.shape:
        raise ValueError("g_devices and potentials must be equal-length 1-D")
    if r_wire <= 0:
        raise ValueError(f"r_wire must be > 0, got {r_wire}")
    g_w = 1.0 / r_wire
    ab = _ladder_banded(g_devices, g_w)
    rhs = g_devices * potentials
    rhs[-1] += g_w * v_term
    return solve_banded((1, 1), ab, rhs)


def _ladder_inverse_diag(g_devices: np.ndarray, g_wire: float) -> np.ndarray:
    """Diagonal of the inverse of the ladder system matrix.

    Uses the numerically stable pivot formula for symmetric tridiagonal
    matrices: with forward-elimination pivots
    ``delta_i = d_i - off^2 / delta_{i-1}`` and backward pivots
    ``mu_i = d_i - off^2 / mu_{i+1}``,

        (A^-1)_{ii} = 1 / (delta_i + mu_i - d_i).

    Unlike the principal-minor recurrence, the pivots stay O(d_i) for
    arbitrarily long ladders, so no rescaling is needed.
    """
    n = g_devices.size
    ab = _ladder_banded(g_devices, g_wire)
    diag = ab[1]
    off_sq = g_wire * g_wire

    delta = np.empty(n)
    delta[0] = diag[0]
    for i in range(1, n):
        delta[i] = diag[i] - off_sq / delta[i - 1]

    mu = np.empty(n)
    mu[n - 1] = diag[n - 1]
    for i in range(n - 2, -1, -1):
        mu[i] = diag[i] - off_sq / mu[i + 1]

    return 1.0 / (delta + mu - diag)


# ----------------------------------------------------------------------
# programming-time factors (the D matrix and beta of Eq. 2)
# ----------------------------------------------------------------------
def program_column_factors(
    conductance: np.ndarray, r_wire: float, v_prog: float
) -> np.ndarray:
    """Vertical delivered-voltage factors ``d_ij`` (Eq. 2's D, per cell).

    For every cell ``(i, j)``, computes the fraction of the nominal
    programming voltage actually delivered across the cell when it is
    selected under the V/2 scheme, accounting for the bit-line wire
    resistance loaded by the half-selected devices of the same column.
    Exact per column via one tridiagonal solve plus the diagonal of the
    ladder inverse (superposition over the selected row).

    Args:
        conductance: Crossbar conductances ``(n, m)`` at programming
            time.
        r_wire: Wire segment resistance in Ohm; 0 returns all-ones.
        v_prog: Nominal programming voltage.

    Returns:
        Factor matrix ``(n, m)`` with entries in (0, 1].
    """
    g = np.asarray(conductance, dtype=float)
    n, m = g.shape
    if r_wire == 0:
        return np.ones((n, m))
    g_w = 1.0 / r_wire
    factors = np.empty((n, m))
    half = v_prog / 2.0
    for j in range(m):
        g_col = g[:, j]
        # Base solve: every row at V/2, selected bit line grounded.
        b_base = column_ladder_solve(g_col, np.full(n, half), r_wire, 0.0)
        inv_diag = _ladder_inverse_diag(g_col, g_w)
        # Superposition: raising row i from V/2 to V adds
        # (V/2) * g_i * (A^-1)_{ii} to the node voltage at i.
        b_sel = b_base + half * g_col * inv_diag
        delivered = v_prog - b_sel
        factors[:, j] = delivered / v_prog
    return np.clip(factors, 1e-9, 1.0)


def program_row_factors(
    conductance: np.ndarray, r_wire: float, v_prog: float
) -> np.ndarray:
    """Horizontal delivered-voltage factors (the beta component).

    First-order estimate of the word-line voltage degradation at each
    column position while programming: the selected word line at ``V``
    feeds the half-selected devices of its row (biased near ``V/2``),
    and the cumulative segment currents drop the delivered voltage as
    the selected column moves right.  Word lines have only ``m``
    segments (10 in the paper's setup) so the first-order model is
    accurate.

    Returns:
        Factor matrix ``(n, m)`` with entries in (0, 1].
    """
    g = np.asarray(conductance, dtype=float)
    n, m = g.shape
    if r_wire == 0:
        return np.ones((n, m))
    half = v_prog / 2.0
    # Current injected into each half-selected device of the row.
    i_dev = g * half
    # Segment k (driver->node0 is k=0) carries the suffix sum of device
    # currents; the drop at column j accumulates segments 0..j.
    suffix = np.cumsum(i_dev[:, ::-1], axis=1)[:, ::-1]
    drop = r_wire * np.cumsum(suffix, axis=1)
    factors = (v_prog - drop) / v_prog
    return np.clip(factors, 1e-9, 1.0)


@dataclasses.dataclass
class IRDropDecomposition:
    """The paper's Fig. 3 decomposition of programming-time IR-drop.

    Attributes:
        row_factors: Horizontal component ``(n, m)`` (Fig. 3a).
        column_factors: Vertical component ``(n, m)`` (Fig. 3c).
        combined: Composed per-cell delivered-voltage factors
            (Fig. 3b), ``1 - (1-row) - (1-col)`` clipped to (0, 1].
        beta: Per-column mean horizontal factor (the scalar ``beta`` of
            Eq. 2), shape ``(m,)``.
        d_skew: Per-column skewness ``max(d)/min(d)`` of the vertical
            factors (the ``d_11/d_nn`` diagnostic of Section 3.2).
    """

    row_factors: np.ndarray
    column_factors: np.ndarray
    combined: np.ndarray
    beta: np.ndarray
    d_skew: np.ndarray


def program_factors(
    conductance: np.ndarray, r_wire: float, v_prog: float
) -> IRDropDecomposition:
    """Full beta/D decomposition for a crossbar state."""
    row_f = program_row_factors(conductance, r_wire, v_prog)
    col_f = program_column_factors(conductance, r_wire, v_prog)
    combined = np.clip(1.0 - (1.0 - row_f) - (1.0 - col_f), 1e-9, 1.0)
    beta = row_f.mean(axis=0)
    d_skew = col_f.max(axis=0) / col_f.min(axis=0)
    return IRDropDecomposition(
        row_factors=row_f,
        column_factors=col_f,
        combined=combined,
        beta=beta,
        d_skew=d_skew,
    )


# ----------------------------------------------------------------------
# read-time attenuation
# ----------------------------------------------------------------------
def read_output_currents(
    conductance: np.ndarray,
    x: np.ndarray,
    r_wire: float,
    v_read: float = 1.0,
    iterations: int = 3,
    chunk: int = 256,
) -> np.ndarray:
    """Bit-line output currents under IR-drop for a batch of inputs.

    Fixed-point refinement: start from the ideal device currents, then
    alternately recompute the word-line voltage profile (prefix sums of
    segment currents) and the bit-line potential rise, updating the
    device currents, for ``iterations`` rounds.

    Args:
        conductance: Crossbar conductances ``(n, m)``.
        x: Input batch ``(s, n)`` (or a single ``(n,)`` vector) of
            normalised features in [0, 1].
        r_wire: Wire segment resistance; 0 yields the ideal product.
        v_read: Read voltage scale.
        iterations: Fixed-point rounds (3 is plenty for r_wire ~ Ohms).
        chunk: Batch rows processed per block to bound memory.

    Returns:
        Output currents, shape ``(s, m)`` (or ``(m,)`` for 1-D input).
    """
    g = np.asarray(conductance, dtype=float)
    x = np.asarray(x, dtype=float)
    single = x.ndim == 1
    if single:
        x = x[None, :]
    s, n = x.shape
    if n != g.shape[0]:
        raise ValueError(f"input width {n} != crossbar rows {g.shape[0]}")
    if r_wire == 0:
        y = v_read * (x @ g)
        return y[0] if single else y

    out = np.empty((s, g.shape[1]))
    for start in range(0, s, chunk):
        xb = x[start : start + chunk]
        out[start : start + xb.shape[0]] = _read_chunk(
            g, xb, r_wire, v_read, iterations
        )
    return out[0] if single else out


def _read_chunk(
    g: np.ndarray, xb: np.ndarray, r_wire: float, v_read: float, iterations: int
) -> np.ndarray:
    b, n = xb.shape
    m = g.shape[1]
    v_in = (xb * v_read)[:, :, None]  # (b, n, 1)
    i_dev = v_in * g[None, :, :]  # (b, n, m)
    for _ in range(iterations):
        # Word-line voltage profile.
        suffix = np.cumsum(i_dev[:, :, ::-1], axis=2)[:, :, ::-1]
        v_row = v_in - r_wire * np.cumsum(suffix, axis=2)
        # Bit-line potential rise above virtual ground.
        prefix = np.cumsum(i_dev, axis=1)  # segment currents below node i
        tail = np.cumsum(prefix[:, ::-1, :], axis=1)[:, ::-1, :]
        u_col = r_wire * tail
        dv = np.clip(v_row - u_col, 0.0, None)
        i_dev = dv * g[None, :, :]
    return i_dev.sum(axis=1)


def read_column_gains(
    conductance: np.ndarray,
    x_reference: np.ndarray,
    r_wire: float,
    v_read: float = 1.0,
    iterations: int = 3,
) -> np.ndarray:
    """Per-column read gain factors at a reference input.

    To first order, IR-drop costs each bit line a *gain*: the column
    potential rise is driven by the column's total current, so every
    cell's contribution shrinks by roughly the same fraction.  The
    returned ``alpha`` (shape ``(m,)``, entries in (0, 1]) satisfies
    ``read(x) ~ v_read * (x @ G) * alpha`` for inputs statistically
    similar to ``x_reference``.  Unlike a per-cell factor map, the
    per-column form stays robust on rows the reference input barely
    drives.
    """
    g = np.asarray(conductance, dtype=float)
    x_ref = np.asarray(x_reference, dtype=float)
    if x_ref.ndim != 1 or x_ref.size != g.shape[0]:
        raise ValueError("x_reference must be a vector of length n")
    if r_wire == 0:
        return np.ones(g.shape[1])
    ideal = v_read * (x_ref @ g)
    if np.any(ideal <= 0):
        return np.ones(g.shape[1])
    modelled = read_output_currents(g, x_ref, r_wire, v_read, iterations)
    return np.clip(modelled / ideal, 1e-3, 1.0)


def read_attenuation_reference(
    conductance: np.ndarray,
    x_reference: np.ndarray,
    r_wire: float,
    v_read: float = 1.0,
    iterations: int = 3,
) -> np.ndarray:
    """Per-cell read attenuation factors at a reference input.

    Produces an effective-conductance correction
    ``G_eff = G * factors`` such that ``v_read * (x @ G_eff)``
    approximates the IR-drop-affected read for inputs statistically
    similar to ``x_reference``.  Used both as a cheap inference model
    for large sweeps and as the compensation target of the open-loop
    pre-calculation (Section 3.2 cites the compensation technique of
    the authors' ICCAD'14 work).

    Returns:
        Attenuation factor matrix ``(n, m)`` in (0, 1].
    """
    g = np.asarray(conductance, dtype=float)
    x_ref = np.asarray(x_reference, dtype=float)
    if x_ref.ndim != 1 or x_ref.size != g.shape[0]:
        raise ValueError("x_reference must be a vector of length n")
    if r_wire == 0:
        return np.ones_like(g)
    v_in = (x_ref * v_read)[:, None]
    i_dev = v_in * g
    dv = np.broadcast_to(v_in, g.shape).copy()
    for _ in range(iterations):
        suffix = np.cumsum(i_dev[:, ::-1], axis=1)[:, ::-1]
        v_row = v_in - r_wire * np.cumsum(suffix, axis=1)
        prefix = np.cumsum(i_dev, axis=0)
        tail = np.cumsum(prefix[::-1, :], axis=0)[::-1, :]
        u_col = r_wire * tail
        dv = np.clip(v_row - u_col, 0.0, None)
        i_dev = dv * g
    with np.errstate(divide="ignore", invalid="ignore"):
        factors = np.where(v_in > 0, dv / np.where(v_in == 0, 1.0, v_in), 1.0)
    return np.clip(factors, 1e-9, 1.0)
