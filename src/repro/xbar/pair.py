"""Differential crossbar pair: signed weights on positive hardware.

The paper represents a signed weight matrix with two crossbars holding
the absolute values of the positive and negative weights respectively
(Section 2.2.1).  ``DifferentialCrossbar`` packages the two arrays, the
shared :class:`~repro.xbar.mapping.WeightScaler`, and the differential
read so the training schemes can think in weight space while every
hardware effect (variation, IR-drop, sensing) is applied in conductance
space.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.circuits.adc import ADC
from repro.circuits.sensing import CurrentSense
from repro.config import CrossbarConfig, DeviceConfig, VariationConfig
from repro.seeding import ensure_rng
from repro.xbar.crossbar import Crossbar
from repro.xbar.mapping import WeightScaler

__all__ = ["DifferentialCrossbar"]


class DifferentialCrossbar:
    """A pair of crossbars realising a signed weight matrix.

    Args:
        scaler: Weight <-> conductance mapping (fixes ``w_max``).
        config: Crossbar geometry shared by both arrays.
        device: Device parameters shared by both arrays.
        variation: Variability statistics (independent fabrication draws
            for the two arrays).
        rng: Random generator; both arrays draw from it so a single
            seed reproduces the full fabricated pair.
        sense: Optional per-array sensing chain (pre-test style reads).
        diff_sense: Optional sensing chain applied to the *differential*
            column current ``I+ - I-``.  Subtracting in the analog
            domain before conversion is the standard differential-pair
            sense design and avoids quantising two large currents only
            to subtract them digitally.
    """

    def __init__(
        self,
        scaler: WeightScaler,
        config: CrossbarConfig | None = None,
        device: DeviceConfig | None = None,
        variation: VariationConfig | None = None,
        rng: np.random.Generator | None = None,
        sense: CurrentSense | None = None,
        diff_sense: CurrentSense | None = None,
    ):
        self.scaler = scaler
        self.config = config if config is not None else CrossbarConfig()
        self.diff_sense = diff_sense
        self.digital_gains: np.ndarray | None = None
        rng = ensure_rng(rng, "repro.xbar.pair.DifferentialCrossbar")
        self.positive = Crossbar(self.config, device, variation, rng, sense)
        self.negative = Crossbar(self.config, device, variation, rng, sense)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.positive.shape

    def program_weights(
        self, weights: np.ndarray, with_cycle_noise: bool = True
    ) -> None:
        """Open-loop program both arrays from a signed weight matrix."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != self.shape:
            raise ValueError(
                f"weights shape {weights.shape} != crossbar shape {self.shape}"
            )
        g_pos, g_neg = self.scaler.weights_to_pair(weights)
        self.positive.program(g_pos, with_cycle_noise)
        self.negative.program(g_neg, with_cycle_noise)
        self.digital_gains = None

    def program_conductances(
        self,
        g_pos: np.ndarray,
        g_neg: np.ndarray,
        with_cycle_noise: bool = True,
    ) -> None:
        """Open-loop program both arrays from explicit targets."""
        self.positive.program(g_pos, with_cycle_noise)
        self.negative.program(g_neg, with_cycle_noise)
        self.digital_gains = None

    def restore_conductances(
        self,
        g_pos: np.ndarray,
        g_neg: np.ndarray,
        theta_pos: np.ndarray | None = None,
        theta_neg: np.ndarray | None = None,
        defects_pos: np.ndarray | None = None,
        defects_neg: np.ndarray | None = None,
    ) -> None:
        """Noise-free restore of both arrays from a persisted snapshot.

        The counterpart of :meth:`program_conductances` for artifact
        loading (:mod:`repro.serve.artifact`): the devices adopt the
        snapshot conductances, variation maps and defect maps exactly,
        without any programming stochasticity, so a serving process
        reconstructs the programmed hardware bit-for-bit.
        """
        self.positive.array.restore_state(g_pos, theta_pos, defects_pos)
        self.negative.array.restore_state(g_neg, theta_neg, defects_neg)

    def effective_weights(self) -> np.ndarray:
        """Signed weights actually realised by the programmed devices."""
        return self.scaler.pair_to_weights(
            self.positive.conductance, self.negative.conductance
        )

    def set_reference_input(self, x_reference: np.ndarray) -> None:
        """Propagate reference input statistics to both arrays."""
        self.positive.set_reference_input(x_reference)
        self.negative.set_reference_input(x_reference)

    def set_nodal_solver(self, solver: str | None) -> None:
        """Pin the nodal solver on both arrays (``None`` = ambient)."""
        self.positive.set_nodal_solver(solver)
        self.negative.set_nodal_solver(solver)

    def calibrate_sense(
        self,
        x_calibration: np.ndarray,
        margin: float = 1.5,
        quantile: float = 0.999,
    ) -> None:
        """Auto-range the differential ADC to the observed signal swing.

        Mimics the programmable-gain calibration every mixed-signal
        read-out performs after programming: the full-scale range is
        set to a small multiple of the differential-current swing seen
        on a calibration batch, so the fixed bit count is spent on the
        actual signal rather than on a worst-case bound.  Without this
        step a converter ranged for an n-row worst case wastes its
        codes -- fatally so for tall crossbars whose score swing does
        not grow with n.

        No-op when the pair has no differential ADC.
        """
        if self.diff_sense is None or self.diff_sense.adc is None:
            return
        x_cal = np.atleast_2d(np.asarray(x_calibration, dtype=float))
        i_diff = (
            self.positive.read(x_cal, "ideal")
            - self.negative.read(x_cal, "ideal")
        )
        peak = float(np.quantile(np.abs(i_diff), quantile))
        old_adc = self.diff_sense.adc
        floor = self.config.v_read * self.positive.device.g_off
        full_scale = max(peak * margin, floor)
        self.diff_sense.adc = ADC(
            old_adc.bits, full_scale, bipolar=old_adc.bipolar
        )

    def matvec(
        self,
        x: np.ndarray,
        ir_mode: str = "ideal",
        backend: ArrayBackend | str | None = None,
    ) -> np.ndarray:
        """Weight-domain outputs ``~ x @ W`` through the hardware path.

        Args:
            x: Input features in [0, 1], ``(rows,)`` or ``(s, rows)``.
            ir_mode: Read fidelity (see :class:`~repro.xbar.crossbar.Crossbar`).
            backend: Array namespace for the read math (default: the
                bit-identical numpy reference path).  The differential
                ADC sense is host-side and round-trips through numpy.

        Returns:
            Outputs in weight units, ``(cols,)`` or ``(s, cols)``.
        """
        bk = resolve_backend(backend)
        i_pos = self.positive.read(x, ir_mode, backend=bk)
        i_neg = self.negative.read(x, ir_mode, backend=bk)
        i_diff = i_pos - i_neg
        if self.diff_sense is not None:
            i_diff = bk.asarray(self.diff_sense.sense(bk.to_numpy(i_diff)))
        scores = self.scaler.currents_to_outputs(
            i_diff, 0.0, self.config.v_read, xp=bk
        )
        if self.digital_gains is not None:
            scores = scores * bk.asarray(self.digital_gains)
        return scores

    def calibrate_digital_gains(
        self,
        x_calibration: np.ndarray,
        intended_weights: np.ndarray,
        ir_mode: str = "ideal",
    ) -> np.ndarray:
        """Fit per-column digital gain corrections after programming.

        The deployer knows the weights it intended to program, so it
        can drive calibration inputs, compare the sensed scores with
        the intended ones, and store a per-column digital multiplier --
        the standard post-programming calibration, and the read-path
        counterpart of the paper's [10] IR-drop compensation.  A single
        gain per column corrects the systematic column-level errors
        (bit-line attenuation, positive/negative array gain imbalance)
        while leaving the per-cell variation -- the paper's subject --
        untouched.

        Args:
            x_calibration: Calibration input batch ``(s, rows)``.
            intended_weights: The weight matrix the programming aimed
                for, shape ``(rows, cols)``.
            ir_mode: Read model used for the calibration reads.

        Returns:
            The fitted gain vector, shape ``(cols,)``.
        """
        x_cal = np.atleast_2d(np.asarray(x_calibration, dtype=float))
        intended = x_cal @ np.asarray(intended_weights, dtype=float)
        self.digital_gains = None
        sensed = self.matvec(x_cal, ir_mode)
        num = np.sum(sensed * intended, axis=0)
        den = np.sum(sensed * sensed, axis=0)
        gains = np.where(den > 0, num / np.where(den == 0, 1.0, den), 1.0)
        self.digital_gains = np.clip(gains, 0.1, 10.0)
        return self.digital_gains

    def theta_maps(self) -> tuple[np.ndarray, np.ndarray]:
        """Ground-truth persistent variation of the two arrays."""
        return (
            self.positive.array.theta.copy(),
            self.negative.array.theta.copy(),
        )
