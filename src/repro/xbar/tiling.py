"""Row-wise crossbar tiling: large layers across multiple arrays.

A 784-input layer on a single crossbar pays the full bit-line IR-drop
of 784 wire segments (Table 1's tension: more features, worse wires).
Deployments instead *tile*: the weight matrix is split row-wise across
several smaller pairs whose column currents are summed digitally after
sensing.  Columns shorten by the tile count, so the IR regime improves
quadratically while the feature count is preserved -- the architectural
counterpart of the paper's algorithmic compensation.

``TiledPair`` exposes the same programming/read surface as
:class:`repro.xbar.pair.DifferentialCrossbar` for the row-partitioned
case, reusing one scaler so the digital summation is consistent.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.circuits.adc import ADC
from repro.circuits.sensing import CurrentSense
from repro.config import CrossbarConfig, DeviceConfig, VariationConfig
from repro.seeding import ensure_rng
from repro.xbar.mapping import WeightScaler
from repro.xbar.pair import DifferentialCrossbar

__all__ = ["TiledPair", "split_rows"]


def split_rows(n_rows: int, tile_rows: int) -> list[tuple[int, int]]:
    """Row ranges ``[(start, stop), ...]`` of a row-wise tiling."""
    if n_rows < 1:
        raise ValueError("n_rows must be >= 1")
    if tile_rows < 1:
        raise ValueError("tile_rows must be >= 1")
    return [
        (start, min(start + tile_rows, n_rows))
        for start in range(0, n_rows, tile_rows)
    ]


class TiledPair:
    """A weight matrix row-partitioned across differential-pair tiles.

    Args:
        scaler: Shared weight <-> conductance map (one normalisation
            across all tiles keeps the digital sum meaningful).
        n_rows: Logical input count of the layer.
        cols: Output columns.
        tile_rows: Rows per tile (the last tile may be smaller).
        config: Per-tile crossbar parameters; its ``rows`` field is
            overridden by the tiling.
        device: Device parameters shared by the tiles.
        variation: Variability statistics (independent draws per tile).
        rng: Fabrication randomness.
        adc_bits: Optional per-tile differential ADC resolution
            (``None`` senses ideally); each tile auto-ranges via
            :meth:`calibrate_sense`.
    """

    def __init__(
        self,
        scaler: WeightScaler,
        n_rows: int,
        cols: int,
        tile_rows: int,
        config: CrossbarConfig | None = None,
        device: DeviceConfig | None = None,
        variation: VariationConfig | None = None,
        rng: np.random.Generator | None = None,
        adc_bits: int | None = None,
    ):
        base = config if config is not None else CrossbarConfig()
        rng = ensure_rng(rng, "repro.xbar.tiling.TiledCrossbar")
        self.scaler = scaler
        self.n_rows = int(n_rows)
        self.cols = int(cols)
        self.ranges = split_rows(n_rows, tile_rows)
        self.tiles: list[DifferentialCrossbar] = []
        for start, stop in self.ranges:
            tile_cfg = CrossbarConfig(
                rows=stop - start,
                cols=cols,
                r_wire=base.r_wire,
                v_read=base.v_read,
            )
            diff_sense = None
            if adc_bits is not None:
                full_scale = (
                    tile_cfg.v_read
                    * (device or DeviceConfig()).g_range
                    * tile_cfg.rows
                    * 0.02
                )
                diff_sense = CurrentSense(
                    adc=ADC(adc_bits, full_scale, bipolar=True)
                )
            self.tiles.append(
                DifferentialCrossbar(
                    scaler=scaler,
                    config=tile_cfg,
                    device=device,
                    variation=variation,
                    rng=rng,
                    diff_sense=diff_sense,
                )
            )

    # ------------------------------------------------------------------
    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.cols)

    def _split(self, array: np.ndarray, axis: int) -> list[np.ndarray]:
        return [
            np.take(array, np.arange(start, stop), axis=axis)
            for start, stop in self.ranges
        ]

    # ------------------------------------------------------------------
    def program_weights(
        self, weights: np.ndarray, with_cycle_noise: bool = True
    ) -> None:
        """Open-loop program all tiles from one signed weight matrix.

        The normalisation is global (one scale for the whole layer) so
        the digitally summed outputs reproduce ``x @ W`` up to the
        common factor.
        """
        w = np.asarray(weights, dtype=float)
        if w.shape != self.shape:
            raise ValueError(
                f"weights shape {w.shape} != layer shape {self.shape}"
            )
        peak = float(np.max(np.abs(w)))
        if peak > 0:
            w = w * (self.scaler.w_max / peak)
        for tile, w_tile in zip(self.tiles, self._split(w, axis=0)):
            tile.program_weights(w_tile, with_cycle_noise)

    def partial_matvec(
        self,
        x: np.ndarray,
        ir_mode: str = "ideal",
        backend: ArrayBackend | str | None = None,
    ) -> list[np.ndarray]:
        """Per-tile weight-domain partial outputs, in tile order.

        Each tile sees its own row slice of ``x`` and returns its
        digitised contribution to ``x @ W``; :meth:`matvec` is exactly
        the left-to-right sum of this list.  The fleet layer reads
        shards remotely and reduces the gathered partials in the same
        order, so a scatter-gather read reproduces a local tiled read
        bit-for-bit.  ``backend`` selects the array namespace (default:
        the bit-identical numpy reference path).
        """
        bk = resolve_backend(backend)
        x = bk.asarray(x)
        if x.shape[-1] != self.n_rows:
            raise ValueError(
                f"input width {x.shape[-1]} != layer rows {self.n_rows}"
            )
        return [
            tile.matvec(
                bk.take_range(x, start, stop, axis=-1), ir_mode, backend=bk
            )
            for tile, (start, stop) in zip(self.tiles, self.ranges)
        ]

    @staticmethod
    def reduce_partials(parts: list[np.ndarray]) -> np.ndarray:
        """Left-to-right digital sum of per-tile partial outputs.

        The one true accumulation order: :meth:`matvec`, the fleet
        router and any other consumer of :meth:`partial_matvec` must
        reduce through this helper so their results stay bit-identical
        regardless of where the partials were computed.
        """
        if not parts:
            raise ValueError("no partial outputs to reduce")
        total = parts[0]
        for part in parts[1:]:
            total = total + part
        return total

    def matvec(
        self,
        x: np.ndarray,
        ir_mode: str = "ideal",
        backend: ArrayBackend | str | None = None,
    ) -> np.ndarray:
        """Digitally summed tile outputs ``~ x @ W`` (normalised).

        Accepts a single query ``(n_rows,)`` or a batch
        ``(s, n_rows)``; a batch delegates to each tile's batched
        :meth:`~repro.xbar.crossbar.Crossbar.read` (one multi-RHS
        solve per tile under ``'nodal'``) and is bit-identical to
        looping the single-query path over the batch rows.
        """
        return self.reduce_partials(
            self.partial_matvec(x, ir_mode, backend=backend)
        )

    def effective_weights(self) -> np.ndarray:
        """Realised (normalised) weights concatenated across tiles."""
        return np.concatenate(
            [tile.effective_weights() for tile in self.tiles], axis=0
        )

    def conductance_maps(self) -> tuple[np.ndarray, np.ndarray]:
        """(positive, negative) conductances stacked across tiles.

        Rows concatenate in tile order, so the stacked ``(n_rows, cols)``
        matrices round-trip through :meth:`restore_conductances`.
        """
        return (
            np.concatenate(
                [t.positive.conductance for t in self.tiles], axis=0
            ),
            np.concatenate(
                [t.negative.conductance for t in self.tiles], axis=0
            ),
        )

    def theta_maps(self) -> tuple[np.ndarray, np.ndarray]:
        """Persistent variation maps stacked across tiles."""
        maps = [t.theta_maps() for t in self.tiles]
        return (
            np.concatenate([m[0] for m in maps], axis=0),
            np.concatenate([m[1] for m in maps], axis=0),
        )

    def restore_conductances(
        self,
        g_pos: np.ndarray,
        g_neg: np.ndarray,
        theta_pos: np.ndarray | None = None,
        theta_neg: np.ndarray | None = None,
    ) -> None:
        """Noise-free restore of every tile from stacked snapshots.

        Accepts the row-stacked matrices produced by
        :meth:`conductance_maps` / :meth:`theta_maps` and routes each
        tile its row slice (see :mod:`repro.serve.artifact`).
        """
        parts_pos = self._split(np.asarray(g_pos, dtype=float), axis=0)
        parts_neg = self._split(np.asarray(g_neg, dtype=float), axis=0)
        t_pos = (
            self._split(np.asarray(theta_pos, dtype=float), axis=0)
            if theta_pos is not None else [None] * self.n_tiles
        )
        t_neg = (
            self._split(np.asarray(theta_neg, dtype=float), axis=0)
            if theta_neg is not None else [None] * self.n_tiles
        )
        for tile, gp, gn, tp, tn in zip(
            self.tiles, parts_pos, parts_neg, t_pos, t_neg
        ):
            tile.restore_conductances(gp, gn, tp, tn)

    def calibrate_sense(self, x_calibration: np.ndarray) -> None:
        """Auto-range every tile's differential ADC on its input slice."""
        x_cal = np.atleast_2d(np.asarray(x_calibration, dtype=float))
        for tile, x_tile in zip(self.tiles, self._split(x_cal, axis=-1)):
            tile.calibrate_sense(x_tile)

    def set_reference_input(self, x_reference: np.ndarray) -> None:
        """Propagate reference input statistics to every tile."""
        x_ref = np.asarray(x_reference, dtype=float)
        for tile, x_tile in zip(self.tiles, self._split(x_ref, axis=-1)):
            tile.set_reference_input(x_tile)

    def set_nodal_solver(self, solver: str | None) -> None:
        """Pin the nodal solver on every tile (``None`` = ambient)."""
        for tile in self.tiles:
            tile.set_nodal_solver(solver)
