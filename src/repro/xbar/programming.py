"""Open-loop pulse-plan computation (the "pre-calculation" of OLD).

The open-loop off-device scheme "pre-calculates the programming pulse
width/magnitude of each memristor based on the target resistance value
and then programs every device according to the calculations"
(Section 1, citing the authors' ICCAD'14 work).  This module implements
that pre-calculation against the nominal switching model of
:mod:`repro.devices.switching`, including the IR-drop compensation the
paper credits to [10]: because the wire resistance is known at design
time, the pulse width for a cell whose delivered voltage is degraded by
a factor ``f`` can be stretched by the (deterministic) slow-down of the
switching rate at ``f * V``.

Two execution paths are provided:

* :func:`execute_plan` applies the pulses *physically* -- each device
  integrates its pulse with its own (unknown to the planner) rate
  multiplier, which is how parametric variation corrupts open-loop
  programming in the real array.
* The abstract path used by the experiment drivers lands directly at
  ``g_target * exp(theta)`` (``MemristorArray.program_conductance``),
  which is the model the paper's equations assume.  The test suite
  verifies the two paths agree to first order in ``theta``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.devices.memristor import MemristorArray
from repro.devices.switching import SwitchingModel
from repro.xbar.ir_drop import program_factors

__all__ = ["PulsePlan", "plan_programming", "execute_plan"]


@dataclasses.dataclass
class PulsePlan:
    """Per-cell programming recipe.

    Attributes:
        polarity: ``+1`` for SET (toward LRS), ``-1`` for RESET, ``0``
            for cells already at target.
        voltage: Nominal pulse magnitude per cell (V).
        width: Pulse width per cell (s), already compensated for
            IR-drop if the plan was built with compensation.
        target_state: The internal state each cell should reach.
    """

    polarity: np.ndarray
    voltage: np.ndarray
    width: np.ndarray
    target_state: np.ndarray


def plan_programming(
    model: SwitchingModel,
    current_state: np.ndarray,
    target_g: np.ndarray,
    r_wire: float = 0.0,
    compensate_ir_drop: bool = True,
) -> PulsePlan:
    """Pre-calculate pulses that move an array to target conductances.

    Args:
        model: Nominal switching model (the planner never sees the
            per-device variation).
        current_state: Present internal states, shape ``(n, m)``.
        target_g: Target conductances, shape ``(n, m)``.
        r_wire: Wire segment resistance for IR-drop compensation; 0
            disables the correction.
        compensate_ir_drop: Stretch pulse widths by the predicted
            switching-rate slow-down at the degraded delivered voltage.

    Returns:
        A :class:`PulsePlan`.
    """
    current_state = np.asarray(current_state, dtype=float)
    target_state = model.state_of(target_g)
    # Exponential relaxation cannot reach a rail in finite time: nudge
    # rail targets a hair inside the range.
    rail_eps = 1e-6
    target_state = np.clip(target_state, rail_eps, 1.0 - rail_eps)
    if current_state.shape != target_state.shape:
        raise ValueError("current_state and target_g shapes differ")

    d = model.device
    polarity = np.sign(target_state - current_state).astype(int)
    voltage = np.where(polarity >= 0, d.v_set, d.v_reset)

    width = np.zeros_like(current_state)
    set_mask = polarity > 0
    reset_mask = polarity < 0
    if np.any(set_mask):
        width[set_mask] = model.pulse_width_for(
            current_state[set_mask], target_state[set_mask], d.v_set, "set"
        )
    if np.any(reset_mask):
        width[reset_mask] = model.pulse_width_for(
            current_state[reset_mask],
            target_state[reset_mask],
            d.v_reset,
            "reset",
        )

    if compensate_ir_drop and r_wire > 0:
        # Delivered voltage factors predicted from the *target* state
        # (the planner knows the intended final conductances).
        decomposition = program_factors(
            np.asarray(target_g, dtype=float), r_wire, float(d.v_set)
        )
        factors = decomposition.combined
        # rate(f*V)/rate(V) < 1: stretch the pulse by its inverse.
        slow_set = model.nonlinearity_factor(d.v_set * factors, "set")
        slow_reset = model.nonlinearity_factor(d.v_reset * factors, "reset")
        slowdown = np.where(polarity >= 0, slow_set, slow_reset)
        width = width / np.maximum(slowdown, 1e-12)

    return PulsePlan(
        polarity=polarity,
        voltage=voltage,
        width=width,
        target_state=target_state,
    )


def execute_plan(
    array: MemristorArray,
    plan: PulsePlan,
    delivered_factors: np.ndarray | float = 1.0,
    rate_variation: bool = True,
) -> np.ndarray:
    """Physically apply a pulse plan to a device array.

    Each cell integrates its pulse with the *actual* delivered voltage
    (``plan.voltage * delivered_factors``) and, when ``rate_variation``
    is set, with its own persistent rate multiplier ``exp(theta)`` --
    the physical origin of the lognormal programming error the paper's
    equations model directly in conductance space.

    Args:
        array: The fabricated device array to program.
        plan: Pre-calculated pulses.
        delivered_factors: Actual per-cell voltage delivery factors
            (e.g. from :func:`repro.xbar.ir_drop.program_factors`).
        rate_variation: Scale each device's switching rate by
            ``exp(theta)``.

    Returns:
        The conductance array after programming.
    """
    model = array.switching
    d = array.device
    factors = np.broadcast_to(
        np.asarray(delivered_factors, dtype=float), array.shape
    )
    state = array.state.copy()

    rate_mult = np.exp(array.theta) if rate_variation else np.ones(array.shape)
    for pol, name in ((1, "set"), (-1, "reset")):
        mask = plan.polarity == pol
        if not np.any(mask):
            continue
        v_nom = d.v_set if pol > 0 else d.v_reset
        v_delivered = v_nom * factors[mask]
        # Effective width absorbs the per-device rate multiplier.
        eff_width = plan.width[mask] * rate_mult[mask]
        state[mask] = model.apply_pulse(
            state[mask], v_delivered, eff_width, name
        )

    healthy = array.defects == 0
    # Full reassignment (not an in-place slice write) so the array's
    # state version bumps and cached read models invalidate.
    new_state = array.state.copy()
    new_state[healthy] = state[healthy]
    array.state = new_state
    return array.conductance
