"""Full sparse nodal analysis of a memristor crossbar.

This is the circuit-level ground truth for the IR-drop studies of
Section 3.2.  The crossbar is modelled as the complete resistive
network: every cross-point memristor connects its word-line (top) node
to its bit-line (bottom) node; adjacent nodes along a wire are joined
by the segment resistance ``r_wire``; each word line is driven from its
left end and each bit line is terminated (driven or virtually grounded)
at its bottom end, both through one additional wire segment.

Geometry and indexing::

        col 0   col 1  ...  col m-1
  row 0  T00-----T01--------T0,m-1      <- word line 0, driven at left
          |       |           |            (memristors are the vertical
  row 1  T10-----T11--------T1,m-1         bars between T and B planes)
          .       .           .
  bottom B(n-1,0) ... B(n-1,m-1)        <- bit lines terminate at bottom

Unknowns are the ``2*n*m`` node voltages (top plane then bottom plane).
The solver supports arbitrary driver voltages on both planes so the
same code answers both questions of the paper:

* **Read / compute mode** -- word lines driven at the input voltages,
  bit lines virtually grounded; the outputs are the bit-line currents.
* **Program mode** -- the V/2 scheme of Section 2.2.2: one word line at
  V, one bit line at 0, everything else at V/2; the output of interest
  is the voltage actually delivered across the selected cell.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.sparse import coo_matrix, csc_matrix
from scipy.sparse.linalg import splu

__all__ = ["NodalSolution", "CrossbarNetwork"]


@dataclasses.dataclass
class NodalSolution:
    """Result of one nodal solve.

    Attributes:
        v_top: Word-line plane node voltages, shape ``(n, m)``.
        v_bottom: Bit-line plane node voltages, shape ``(n, m)``.
        device_voltage: Voltage across each memristor, ``(n, m)``.
        device_current: Current through each memristor, ``(n, m)``.
        column_current: Current delivered into each bit-line
            termination, shape ``(m,)``.
    """

    v_top: np.ndarray
    v_bottom: np.ndarray
    device_voltage: np.ndarray
    device_current: np.ndarray
    column_current: np.ndarray


class CrossbarNetwork:
    """Sparse nodal model of an ``n x m`` crossbar with wire resistance.

    Args:
        conductance: Memristor conductance matrix ``G``, shape
            ``(n, m)``, in Siemens.
        r_wire: Wire segment resistance in Ohm (> 0).

    The conductance matrix is captured at construction; build a new
    network (or call :meth:`update_conductance`) after reprogramming.
    """

    def __init__(self, conductance: np.ndarray, r_wire: float):
        conductance = np.asarray(conductance, dtype=float)
        if conductance.ndim != 2:
            raise ValueError("conductance must be a 2-D matrix")
        if np.any(conductance <= 0):
            raise ValueError("conductances must be strictly positive")
        if r_wire <= 0:
            raise ValueError(
                f"r_wire must be > 0 for nodal analysis, got {r_wire}"
            )
        self.g = conductance
        self.n, self.m = conductance.shape
        self.r_wire = float(r_wire)
        self._lu = None

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def _top(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        return i * self.m + j

    def _bottom(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        return self.n * self.m + i * self.m + j

    def _assemble(self) -> None:
        """Build and factorise the conductance (Laplacian) matrix."""
        n, m = self.n, self.m
        g_w = 1.0 / self.r_wire
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        diag = np.zeros(2 * n * m)

        def add_edge(a: np.ndarray, b: np.ndarray, g: np.ndarray) -> None:
            rows.append(a)
            cols.append(b)
            vals.append(-g)
            rows.append(b)
            cols.append(a)
            vals.append(-g)
            np.add.at(diag, a, g)
            np.add.at(diag, b, g)

        ii, jj = np.meshgrid(np.arange(n), np.arange(m), indexing="ij")
        ii = ii.ravel()
        jj = jj.ravel()

        # Memristors: top(i,j) -- bottom(i,j).
        add_edge(self._top(ii, jj), self._bottom(ii, jj), self.g.ravel())

        # Word-line segments: top(i,j) -- top(i,j+1).
        ih, jh = np.meshgrid(np.arange(n), np.arange(m - 1), indexing="ij")
        ih = ih.ravel()
        jh = jh.ravel()
        if ih.size:
            add_edge(
                self._top(ih, jh),
                self._top(ih, jh + 1),
                np.full(ih.size, g_w),
            )

        # Bit-line segments: bottom(i,j) -- bottom(i+1,j).
        iv, jv = np.meshgrid(np.arange(n - 1), np.arange(m), indexing="ij")
        iv = iv.ravel()
        jv = jv.ravel()
        if iv.size:
            add_edge(
                self._bottom(iv, jv),
                self._bottom(iv + 1, jv),
                np.full(iv.size, g_w),
            )

        # Driver connections add g_w to the diagonal of boundary nodes;
        # the source current enters through the right-hand side.
        left = self._top(np.arange(n), np.zeros(n, dtype=int))
        np.add.at(diag, left, g_w)
        bottom = self._bottom(np.full(m, n - 1), np.arange(m))
        np.add.at(diag, bottom, g_w)

        size = 2 * n * m
        all_rows = np.concatenate(rows + [np.arange(size)])
        all_cols = np.concatenate(cols + [np.arange(size)])
        all_vals = np.concatenate(vals + [diag])
        matrix = coo_matrix(
            (all_vals, (all_rows, all_cols)), shape=(size, size)
        )
        self._lu = splu(csc_matrix(matrix))

    def update_conductance(self, conductance: np.ndarray) -> None:
        """Replace the device conductances and invalidate the factor."""
        conductance = np.asarray(conductance, dtype=float)
        if conductance.shape != (self.n, self.m):
            raise ValueError(
                f"expected shape {(self.n, self.m)}, got {conductance.shape}"
            )
        if np.any(conductance <= 0):
            raise ValueError("conductances must be strictly positive")
        self.g = conductance
        self._lu = None

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(
        self, v_rows: np.ndarray, v_cols: np.ndarray | float = 0.0
    ) -> NodalSolution:
        """Solve the network for given driver voltages.

        Args:
            v_rows: Word-line driver voltages, shape ``(n,)``.
            v_cols: Bit-line termination voltages, scalar or ``(m,)``
                (0 for virtual-ground sensing).

        Returns:
            A :class:`NodalSolution` with node voltages and currents.
        """
        if self._lu is None:
            self._assemble()
        n, m = self.n, self.m
        v_rows = np.asarray(v_rows, dtype=float)
        if v_rows.shape != (n,):
            raise ValueError(f"v_rows must have shape ({n},), got {v_rows.shape}")
        v_cols = np.broadcast_to(np.asarray(v_cols, dtype=float), (m,))
        g_w = 1.0 / self.r_wire

        rhs = np.zeros(2 * n * m)
        left = self._top(np.arange(n), np.zeros(n, dtype=int))
        rhs[left] = v_rows * g_w
        bottom = self._bottom(np.full(m, n - 1), np.arange(m))
        rhs[bottom] += v_cols * g_w

        v = self._lu.solve(rhs)
        v_top = v[: n * m].reshape(n, m)
        v_bottom = v[n * m :].reshape(n, m)
        dv = v_top - v_bottom
        i_dev = dv * self.g
        i_col = (v_bottom[n - 1, :] - v_cols) * g_w
        return NodalSolution(
            v_top=v_top,
            v_bottom=v_bottom,
            device_voltage=dv,
            device_current=i_dev,
            column_current=i_col,
        )

    # ------------------------------------------------------------------
    # convenience modes
    # ------------------------------------------------------------------
    def read(self, x: np.ndarray, v_read: float = 1.0) -> np.ndarray:
        """Column output currents for input vector ``x`` in [0, 1]."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n,):
            raise ValueError(f"x must have shape ({self.n},), got {x.shape}")
        return self.solve(x * v_read, 0.0).column_current

    def read_batch(self, x: np.ndarray, v_read: float = 1.0) -> np.ndarray:
        """Column output currents for a batch of read inputs.

        One sparse factorisation serves the whole batch: the LU factor
        of the network Laplacian depends only on the conductance state,
        so ``s`` inputs are solved as ``s`` right-hand sides of the same
        factor.  This is what makes batched inference serving cheap --
        the dominant cost of a nodal read (the factorisation) is paid
        once per programmed state rather than once per query.

        Args:
            x: Inputs in [0, 1], shape ``(s, n)`` or a single ``(n,)``.
            v_read: Read voltage scale.

        Returns:
            Currents, shape ``(s, m)`` (or ``(m,)`` for 1-D input).
        """
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        xb = np.atleast_2d(x)
        if xb.shape[1] != self.n:
            raise ValueError(
                f"inputs must have {self.n} features, got {xb.shape[1]}"
            )
        if self._lu is None:
            self._assemble()
        n, m = self.n, self.m
        g_w = 1.0 / self.r_wire
        rhs = np.zeros((2 * n * m, xb.shape[0]))
        left = self._top(np.arange(n), np.zeros(n, dtype=int))
        rhs[left, :] = (xb * v_read).T * g_w
        v = self._lu.solve(rhs)
        bottom = self._bottom(np.full(m, n - 1), np.arange(m))
        # Bit lines are virtually grounded during reads (v_cols = 0).
        i_col = v[bottom, :] * g_w
        return i_col[:, 0] if single else i_col.T

    def program_voltages(
        self, row: int, col: int, v_prog: float
    ) -> NodalSolution:
        """Nodal solve of the V/2 scheme selecting cell ``(row, col)``.

        The selected word line is driven at ``v_prog``, the selected bit
        line at 0, and every other wire at ``v_prog / 2``
        (Section 2.2.2).  The delivered programming voltage is
        ``solution.device_voltage[row, col]``.
        """
        if not (0 <= row < self.n and 0 <= col < self.m):
            raise IndexError(f"cell ({row}, {col}) outside {self.n}x{self.m}")
        v_rows = np.full(self.n, v_prog / 2.0)
        v_rows[row] = v_prog
        v_cols = np.full(self.m, v_prog / 2.0)
        v_cols[col] = 0.0
        return self.solve(v_rows, v_cols)

    def ideal_read(self, x: np.ndarray, v_read: float = 1.0) -> np.ndarray:
        """Zero-wire-resistance reference: ``I = v_read * (x @ G)``."""
        x = np.asarray(x, dtype=float)
        return v_read * (x @ self.g)
