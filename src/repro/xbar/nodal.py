"""Full nodal analysis of a memristor crossbar, with pluggable solvers.

This is the circuit-level ground truth for the IR-drop studies of
Section 3.2.  The crossbar is modelled as the complete resistive
network: every cross-point memristor connects its word-line (top) node
to its bit-line (bottom) node; adjacent nodes along a wire are joined
by the segment resistance ``r_wire``; each word line is driven from its
left end and each bit line is terminated (driven or virtually grounded)
at its bottom end, both through one additional wire segment.

Geometry and indexing::

        col 0   col 1  ...  col m-1
  row 0  T00-----T01--------T0,m-1      <- word line 0, driven at left
          |       |           |            (memristors are the vertical
  row 1  T10-----T11--------T1,m-1         bars between T and B planes)
          .       .           .
  bottom B(n-1,0) ... B(n-1,m-1)        <- bit lines terminate at bottom

Unknowns are the ``2*n*m`` node voltages (top plane then bottom plane).
The solver supports arbitrary driver voltages on both planes so the
same code answers both questions of the paper:

* **Read / compute mode** -- word lines driven at the input voltages,
  bit lines virtually grounded; the outputs are the bit-line currents.
* **Program mode** -- the V/2 scheme of Section 2.2.2: one word line at
  V, one bit line at 0, everything else at V/2; the output of interest
  is the voltage actually delivered across the selected cell.

Three interchangeable solvers answer the system (see
:mod:`repro.xbar.solvers` and ``docs/ir_drop.md``):

* ``"lu"`` -- generic sparse LU (``splu``) over the full ``2*n*m``
  Laplacian.  The bit-exact oracle every other path is tested against.
* ``"schur"`` -- eliminate the top plane by banded ladder solves and
  factorise only the reduced SPD ``n*m`` system (bandwidth ``m``).
  Matches the oracle to <= 1e-9 relative error on column currents.
* ``"cg"`` -- matrix-free conjugate gradients preconditioned by a
  factorisation of the *nominal* conductance state, which
  :meth:`CrossbarNetwork.update_conductance` deliberately keeps: a
  Monte-Carlo sweep refactorises nothing, each variation draw only
  iterates.  Deterministic (fixed tolerance and iteration order) and
  accurate to the documented :data:`repro.xbar.solvers.CG_CURRENT_RTOL`.

The sparsity *structure* (COO index arrays, wire values, wire-fixed
diagonal) depends only on the geometry, so it is assembled once and
reused across every ``update_conductance``: a conductance change is a
values-only rewrite, never an index rebuild.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.sparse import coo_matrix, csc_matrix
from scipy.sparse.linalg import splu

from repro.xbar.solvers import (
    NODAL_SOLVERS,
    SchurFactor,
    cg_nodal_solve,
    validate_solver,
)

__all__ = ["NodalSolution", "CrossbarNetwork", "NODAL_SOLVERS"]


@dataclasses.dataclass
class NodalSolution:
    """Result of one nodal solve (or a batch of them).

    Attributes:
        v_top: Word-line plane node voltages, shape ``(n, m)`` for a
            scalar solve, ``(B, n, m)`` from :meth:`CrossbarNetwork.solve_batch`.
        v_bottom: Bit-line plane node voltages, same shape.
        device_voltage: Voltage across each memristor, same shape.
        device_current: Current through each memristor, same shape.
        column_current: Current delivered into each bit-line
            termination, shape ``(m,)`` (or ``(B, m)``).
    """

    v_top: np.ndarray
    v_bottom: np.ndarray
    device_voltage: np.ndarray
    device_current: np.ndarray
    column_current: np.ndarray


class CrossbarNetwork:
    """Nodal model of an ``n x m`` crossbar with wire resistance.

    Args:
        conductance: Memristor conductance matrix ``G``, shape
            ``(n, m)``, in Siemens.
        r_wire: Wire segment resistance in Ohm (> 0).
        solver: Which factorisation answers the solves -- one of
            :data:`~repro.config.NODAL_SOLVERS` (default ``"lu"``).

    The conductance matrix is captured at construction; build a new
    network (or call :meth:`update_conductance`) after reprogramming.
    The state captured at construction also becomes the *nominal*
    state of the cg preconditioner, which ``update_conductance``
    deliberately does not invalidate (see
    :meth:`set_preconditioner_state`).
    """

    def __init__(
        self, conductance: np.ndarray, r_wire: float, solver: str = "lu"
    ):
        conductance = np.asarray(conductance, dtype=float)
        if conductance.ndim != 2:
            raise ValueError("conductance must be a 2-D matrix")
        if np.any(conductance <= 0):
            raise ValueError("conductances must be strictly positive")
        if r_wire <= 0:
            raise ValueError(
                f"r_wire must be > 0 for nodal analysis, got {r_wire}"
            )
        self.g = conductance
        self.n, self.m = conductance.shape
        self.r_wire = float(r_wire)
        self.solver = validate_solver(solver)
        self._structure: dict[str, np.ndarray] | None = None
        self._lu = None
        self._schur: SchurFactor | None = None
        self._precond: SchurFactor | None = None
        self._precond_g = self.g.copy()
        #: Blocked iterations of the most recent cg solve (diagnostic).
        self.last_cg_iterations = 0

    # ------------------------------------------------------------------
    # solver selection
    # ------------------------------------------------------------------
    def set_solver(self, solver: str) -> None:
        """Switch the answering solver; cached factors stay per-path."""
        self.solver = validate_solver(solver)

    def set_preconditioner_state(
        self, conductance: np.ndarray | None = None
    ) -> None:
        """Re-anchor the cg preconditioner on a nominal state.

        Args:
            conductance: The nominal (pre-variation) conductance state
                to factorise; the network's *current* state when
                ``None``.

        The preconditioner survives :meth:`update_conductance` by
        design -- that is what lets a Monte-Carlo chunk reuse one
        factorisation across every draw -- so re-anchor it explicitly
        when the network moves to a genuinely different operating point
        (e.g. after reprogramming to new targets).
        """
        g = self.g if conductance is None else np.asarray(
            conductance, dtype=float
        )
        if g.shape != (self.n, self.m):
            raise ValueError(
                f"expected shape {(self.n, self.m)}, got {g.shape}"
            )
        if np.any(g <= 0):
            raise ValueError("conductances must be strictly positive")
        self._precond_g = g.copy()
        self._precond = None

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def _top(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        return i * self.m + j

    def _bottom(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        return self.n * self.m + i * self.m + j

    def _build_structure(self) -> dict[str, np.ndarray]:
        """Geometry-only sparsity structure, assembled exactly once.

        Returns the COO index arrays with the memristor entries first
        (two directed entries per device, then the fixed wire entries,
        then the diagonal), the constant wire values, and the
        wire-resistance part of the diagonal.  ``update_conductance``
        then only rewrites values: the device entries are ``-g`` twice
        and the diagonal is wire-fixed plus a scatter of ``g`` onto
        both planes.
        """
        n, m = self.n, self.m
        g_w = 1.0 / self.r_wire
        size = 2 * n * m

        ii, jj = np.meshgrid(np.arange(n), np.arange(m), indexing="ij")
        top_idx = self._top(ii.ravel(), jj.ravel())
        bottom_idx = self._bottom(ii.ravel(), jj.ravel())
        rows = [top_idx, bottom_idx]
        cols = [bottom_idx, top_idx]

        wire_rows: list[np.ndarray] = []
        wire_cols: list[np.ndarray] = []
        wire_vals: list[np.ndarray] = []
        wire_diag = np.zeros(size)

        def add_wire_edges(a: np.ndarray, b: np.ndarray) -> None:
            wire_rows.extend([a, b])
            wire_cols.extend([b, a])
            wire_vals.append(np.full(2 * a.size, -g_w))
            np.add.at(wire_diag, a, g_w)
            np.add.at(wire_diag, b, g_w)

        # Word-line segments: top(i,j) -- top(i,j+1).
        ih, jh = np.meshgrid(np.arange(n), np.arange(m - 1), indexing="ij")
        ih, jh = ih.ravel(), jh.ravel()
        if ih.size:
            add_wire_edges(self._top(ih, jh), self._top(ih, jh + 1))

        # Bit-line segments: bottom(i,j) -- bottom(i+1,j).
        iv, jv = np.meshgrid(np.arange(n - 1), np.arange(m), indexing="ij")
        iv, jv = iv.ravel(), jv.ravel()
        if iv.size:
            add_wire_edges(self._bottom(iv, jv), self._bottom(iv + 1, jv))

        # Driver connections add g_w to the diagonal of boundary nodes;
        # the source current enters through the right-hand side.
        left = self._top(np.arange(n), np.zeros(n, dtype=int))
        np.add.at(wire_diag, left, g_w)
        bottom = self._bottom(np.full(m, n - 1), np.arange(m))
        np.add.at(wire_diag, bottom, g_w)

        diag_idx = np.arange(size)
        return {
            "rows": np.concatenate(rows + wire_rows + [diag_idx]),
            "cols": np.concatenate(cols + wire_cols + [diag_idx]),
            "wire_vals": (
                np.concatenate(wire_vals) if wire_vals else np.zeros(0)
            ),
            "wire_diag": wire_diag,
            "left": left,
            "bottom": bottom,
        }

    def _get_structure(self) -> dict[str, np.ndarray]:
        if self._structure is None:
            self._structure = self._build_structure()
        return self._structure

    def _assemble_lu(self) -> None:
        """Values-only rebuild of the LU factor on cached structure."""
        st = self._get_structure()
        n, m = self.n, self.m
        size = 2 * n * m
        gm = self.g.ravel()
        diag = st["wire_diag"].copy()
        diag[: n * m] += gm
        diag[n * m :] += gm
        vals = np.concatenate([-gm, -gm, st["wire_vals"], diag])
        matrix = coo_matrix(
            (vals, (st["rows"], st["cols"])), shape=(size, size)
        )
        self._lu = splu(csc_matrix(matrix))

    def update_conductance(self, conductance: np.ndarray) -> None:
        """Replace the device conductances and invalidate the factors.

        The sparsity structure and the cg preconditioner both survive:
        the structure because it depends only on the geometry, the
        preconditioner because Monte-Carlo draws are perturbations of
        the same nominal state (re-anchor it via
        :meth:`set_preconditioner_state` after a genuine reprogram).
        """
        conductance = np.asarray(conductance, dtype=float)
        if conductance.shape != (self.n, self.m):
            raise ValueError(
                f"expected shape {(self.n, self.m)}, got {conductance.shape}"
            )
        if np.any(conductance <= 0):
            raise ValueError("conductances must be strictly positive")
        self.g = conductance
        self._lu = None
        self._schur = None

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def _get_lu(self):
        if self._lu is None:
            self._assemble_lu()
        return self._lu

    def _get_schur(self) -> SchurFactor:
        if self._schur is None:
            self._schur = SchurFactor(self.g, self.r_wire)
        return self._schur

    def _get_precond(self) -> SchurFactor:
        if self._precond is None:
            self._precond = SchurFactor(self._precond_g, self.r_wire)
        return self._precond

    def _solve_rhs(self, rhs: np.ndarray) -> np.ndarray:
        """Dispatch ``A x = rhs`` (single or multi-RHS) to the solver."""
        if self.solver == "schur":
            return self._get_schur().solve(rhs)
        if self.solver == "cg":
            single = rhs.ndim == 1
            block = rhs[:, None] if single else rhs
            v, iterations = cg_nodal_solve(
                self.g[None], block[None], self.r_wire, self._get_precond()
            )
            self.last_cg_iterations = iterations
            return v[0][:, 0] if single else v[0]
        return self._get_lu().solve(rhs)

    def solve(
        self, v_rows: np.ndarray, v_cols: np.ndarray | float = 0.0
    ) -> NodalSolution:
        """Solve the network for given driver voltages.

        Args:
            v_rows: Word-line driver voltages, shape ``(n,)``.
            v_cols: Bit-line termination voltages, scalar or ``(m,)``
                (0 for virtual-ground sensing).

        Returns:
            A :class:`NodalSolution` with node voltages and currents.
        """
        n, m = self.n, self.m
        v_rows = np.asarray(v_rows, dtype=float)
        if v_rows.shape != (n,):
            raise ValueError(f"v_rows must have shape ({n},), got {v_rows.shape}")
        v_cols = np.broadcast_to(np.asarray(v_cols, dtype=float), (m,))
        g_w = 1.0 / self.r_wire
        st = self._get_structure()

        rhs = np.zeros(2 * n * m)
        rhs[st["left"]] = v_rows * g_w
        rhs[st["bottom"]] += v_cols * g_w

        v = self._solve_rhs(rhs)
        v_top = v[: n * m].reshape(n, m)
        v_bottom = v[n * m :].reshape(n, m)
        dv = v_top - v_bottom
        i_dev = dv * self.g
        i_col = (v_bottom[n - 1, :] - v_cols) * g_w
        return NodalSolution(
            v_top=v_top,
            v_bottom=v_bottom,
            device_voltage=dv,
            device_current=i_dev,
            column_current=i_col,
        )

    def solve_batch(
        self, v_rows: np.ndarray, v_cols: np.ndarray | float = 0.0
    ) -> NodalSolution:
        """Solve a batch of driver configurations against one factor.

        The multi-right-hand-side companion of :meth:`solve`: all ``B``
        configurations share the factorisation (or the blocked cg
        iteration), which is what makes V/2 program-mode sweeps and
        defect pretests cheap -- they stop paying the solve dispatch
        per probed cell.

        Args:
            v_rows: Word-line driver voltages, shape ``(B, n)``.
            v_cols: Bit-line termination voltages: scalar, ``(m,)``
                shared by the batch, or per-configuration ``(B, m)``.

        Returns:
            A :class:`NodalSolution` whose fields carry a leading batch
            axis (``(B, n, m)`` planes, ``(B, m)`` column currents).
        """
        n, m = self.n, self.m
        v_rows = np.asarray(v_rows, dtype=float)
        if v_rows.ndim != 2 or v_rows.shape[1] != n:
            raise ValueError(
                f"v_rows must have shape (B, {n}), got {v_rows.shape}"
            )
        batch = v_rows.shape[0]
        v_cols = np.broadcast_to(
            np.asarray(v_cols, dtype=float), (batch, m)
        )
        g_w = 1.0 / self.r_wire
        st = self._get_structure()

        rhs = np.zeros((2 * n * m, batch))
        rhs[st["left"], :] = v_rows.T * g_w
        rhs[st["bottom"], :] += v_cols.T * g_w

        v = self._solve_rhs(rhs)
        v_top = v[: n * m].T.reshape(batch, n, m)
        v_bottom = v[n * m :].T.reshape(batch, n, m)
        dv = v_top - v_bottom
        i_dev = dv * self.g[None, :, :]
        i_col = (v_bottom[:, n - 1, :] - v_cols) * g_w
        return NodalSolution(
            v_top=v_top,
            v_bottom=v_bottom,
            device_voltage=dv,
            device_current=i_dev,
            column_current=i_col,
        )

    # ------------------------------------------------------------------
    # convenience modes
    # ------------------------------------------------------------------
    def read(self, x: np.ndarray, v_read: float = 1.0) -> np.ndarray:
        """Column output currents for input vector ``x`` in [0, 1]."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n,):
            raise ValueError(f"x must have shape ({self.n},), got {x.shape}")
        return self.solve(x * v_read, 0.0).column_current

    def read_batch(
        self,
        x: np.ndarray,
        v_read: float = 1.0,
        v_cols: np.ndarray | float = 0.0,
    ) -> np.ndarray:
        """Column output currents for a batch of read inputs.

        One factorisation (or blocked cg solve) serves the whole batch:
        the factor depends only on the conductance state, so ``s``
        inputs are solved as ``s`` right-hand sides.  This is what
        makes batched inference serving cheap -- the dominant cost of a
        nodal read is paid once per programmed state rather than once
        per query.

        Args:
            x: Inputs in [0, 1], shape ``(s, n)`` or a single ``(n,)``.
            v_read: Read voltage scale.
            v_cols: Bit-line termination voltages: scalar (0 = the
                virtual-ground sensing default), ``(m,)`` shared by the
                batch, or per-input ``(s, m)``.  Matches the looped
                :meth:`read`/:meth:`solve` semantics exactly -- the
                returned current is the current *into* each
                termination, ``(v_bottom - v_cols) * g_w``.

        Returns:
            Currents, shape ``(s, m)`` (or ``(m,)`` for 1-D input).
        """
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        xb = np.atleast_2d(x)
        if xb.shape[1] != self.n:
            raise ValueError(
                f"inputs must have {self.n} features, got {xb.shape[1]}"
            )
        n, m = self.n, self.m
        batch = xb.shape[0]
        v_cols = np.broadcast_to(
            np.asarray(v_cols, dtype=float), (batch, m)
        )
        g_w = 1.0 / self.r_wire
        st = self._get_structure()
        rhs = np.zeros((2 * n * m, batch))
        rhs[st["left"], :] = (xb * v_read).T * g_w
        rhs[st["bottom"], :] += v_cols.T * g_w
        v = self._solve_rhs(rhs)
        i_col = (v[st["bottom"], :] - v_cols.T) * g_w
        return i_col[:, 0] if single else i_col.T

    def program_voltages(
        self, row: int, col: int, v_prog: float
    ) -> NodalSolution:
        """Nodal solve of the V/2 scheme selecting cell ``(row, col)``.

        The selected word line is driven at ``v_prog``, the selected bit
        line at 0, and every other wire at ``v_prog / 2``
        (Section 2.2.2).  The delivered programming voltage is
        ``solution.device_voltage[row, col]``.
        """
        if not (0 <= row < self.n and 0 <= col < self.m):
            raise IndexError(f"cell ({row}, {col}) outside {self.n}x{self.m}")
        v_rows = np.full(self.n, v_prog / 2.0)
        v_rows[row] = v_prog
        v_cols = np.full(self.m, v_prog / 2.0)
        v_cols[col] = 0.0
        return self.solve(v_rows, v_cols)

    def program_voltages_batch(
        self, cells: np.ndarray, v_prog: float
    ) -> NodalSolution:
        """Batched V/2-scheme solves, one per selected cell.

        Args:
            cells: Selected cells as ``(B, 2)`` ``(row, col)`` pairs
                (or any sequence of pairs).
            v_prog: Nominal programming voltage.

        Returns:
            A batched :class:`NodalSolution`; the delivered voltage of
            probe ``b`` is ``device_voltage[b, rows[b], cols[b]]``.
        """
        cells = np.asarray(cells, dtype=int)
        cells = np.atleast_2d(cells)
        if cells.ndim != 2 or cells.shape[1] != 2:
            raise ValueError(
                f"cells must be (B, 2) (row, col) pairs, got {cells.shape}"
            )
        rows, cols = cells[:, 0], cells[:, 1]
        if np.any((rows < 0) | (rows >= self.n)) or np.any(
            (cols < 0) | (cols >= self.m)
        ):
            raise IndexError(
                f"cell outside {self.n}x{self.m} in program batch"
            )
        batch = cells.shape[0]
        v_rows = np.full((batch, self.n), v_prog / 2.0)
        v_rows[np.arange(batch), rows] = v_prog
        v_cols = np.full((batch, self.m), v_prog / 2.0)
        v_cols[np.arange(batch), cols] = 0.0
        return self.solve_batch(v_rows, v_cols)

    def ideal_read(self, x: np.ndarray, v_read: float = 1.0) -> np.ndarray:
        """Zero-wire-resistance reference: ``I = v_read * (x @ G)``."""
        x = np.asarray(x, dtype=float)
        return v_read * (x @ self.g)
