"""Single memristor crossbar: analog vector-matrix multiplication.

Ties together the device array (:mod:`repro.devices.memristor`), the
IR-drop models (:mod:`repro.xbar.ir_drop`, :mod:`repro.xbar.nodal`) and
the sensing chain (:mod:`repro.circuits.sensing`) into the unit the
training schemes operate on: input voltages on the word lines, output
currents on the bit lines (Section 2.2.1 of the paper).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.circuits.sensing import CurrentSense
from repro.config import CrossbarConfig, DeviceConfig, VariationConfig
from repro.runtime.config import current_runtime
from repro.devices.memristor import MemristorArray
from repro.xbar.ir_drop import (
    read_column_gains,
    read_output_currents,
)
from repro.xbar.nodal import CrossbarNetwork

__all__ = [
    "Crossbar",
    "IR_MODES",
    "batch_invariant_matmul",
    "trial_stacked_matmul",
]

IR_MODES = ("ideal", "reference", "fixed_point", "nodal")


def batch_invariant_matmul(x, g, xp: ArrayBackend | str | None = None):
    """``x @ g`` with per-row results independent of the batch size.

    BLAS picks different kernels and blocking for different operand
    shapes, so with ``@`` the same input vector can produce last-ulp
    different outputs alone versus inside a batch.  The serving
    contract (a batched read is bit-identical to looping single-vector
    reads) needs a fixed accumulation order; einsum's non-BLAS loop
    provides one at a cost that is negligible next to any IR-aware
    solve.

    ``xp`` selects the array namespace (default: the bit-identical
    numpy reference path; see :mod:`repro.backend`).
    """
    bk = resolve_backend(xp)
    if x.ndim == 1:
        return bk.einsum("n,nm->m", x, g)
    return bk.einsum("sn,nm->sm", x, g)


# Retained private alias for pre-existing in-module call sites.
_batch_invariant_matmul = batch_invariant_matmul


def trial_stacked_matmul(x, g, xp: ArrayBackend | str | None = None):
    """Fixed-accumulation matmul over a stack of trial conductances.

    The Monte-Carlo counterpart of :func:`batch_invariant_matmul`:
    ``g`` carries a leading trial axis ``(T, n, m)`` and ``x`` is
    either one input batch ``(s, n)`` shared by every trial or a
    per-trial stack ``(T, s, n)`` (e.g. AMP row permutations that
    differ per draw).  The returned ``(T, s, m)`` tensor satisfies
    ``out[t] == batch_invariant_matmul(x[t] if per-trial else x, g[t])``
    *bit-for-bit*: einsum reduces over ``n`` in the same fixed order
    for every trial slice, so batching draws cannot perturb a single
    draw's result.

    ``xp`` selects the array namespace (default: the bit-identical
    numpy reference path; see :mod:`repro.backend`).
    """
    bk = resolve_backend(xp)
    if g.ndim != 3:
        raise ValueError(
            f"g must be a (T, n, m) trial stack, got shape {g.shape}"
        )
    if x.ndim == 2:
        return bk.einsum("sn,tnm->tsm", x, g)
    if x.ndim == 3:
        return bk.einsum("tsn,tnm->tsm", x, g)
    raise ValueError(
        f"x must be (s, n) or a (T, s, n) trial stack, got shape {x.shape}"
    )


class Crossbar:
    """An ``n x m`` memristor crossbar with configurable read fidelity.

    Args:
        config: Geometry and interconnect parameters.
        device: Nominal device parameters.
        variation: Device variability statistics.
        rng: Random generator (fabrication draw + cycle noise).
        sense: Optional sensing chain applied to read currents;
            ``None`` senses ideally.

    The read model fidelity is selected per call via ``ir_mode``:

    * ``'ideal'`` -- zero wire resistance, ``I = v_read * (x @ G)``.
    * ``'reference'`` -- effective conductances attenuated at a cached
      reference input (cheap, used inside large sweeps).
    * ``'fixed_point'`` -- per-sample fixed-point wire solve.
    * ``'nodal'`` -- full sparse nodal analysis (ground truth).
    """

    def __init__(
        self,
        config: CrossbarConfig | None = None,
        device: DeviceConfig | None = None,
        variation: VariationConfig | None = None,
        rng: np.random.Generator | None = None,
        sense: CurrentSense | None = None,
    ):
        self.config = config if config is not None else CrossbarConfig()
        self.device = device if device is not None else DeviceConfig()
        self.array = MemristorArray(
            (self.config.rows, self.config.cols),
            device=self.device,
            variation=variation,
            rng=rng,
        )
        self.sense = sense
        self._reference_factors: np.ndarray | None = None
        self._reference_input: np.ndarray | None = None
        # Cached read models, valid only for one device state: the
        # version stamp detects any state change (programming, aging,
        # defect injection) and forces a rebuild.
        self._network: CrossbarNetwork | None = None
        self._network_version: int = -1
        self._reference_version: int = -1

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.array.shape

    @property
    def conductance(self) -> np.ndarray:
        """Actual device conductances, shape ``(rows, cols)``."""
        return self.array.conductance

    # ------------------------------------------------------------------
    # programming
    # ------------------------------------------------------------------
    def program(self, target_g: np.ndarray, with_cycle_noise: bool = True):
        """Open-loop program all cells toward target conductances."""
        result = self.array.program_conductance(target_g, with_cycle_noise)
        self._reference_factors = None
        return result

    def update(
        self,
        delta_g: np.ndarray,
        efficiency: np.ndarray | float = 1.0,
        with_cycle_noise: bool = True,
    ):
        """Close-loop incremental conductance update."""
        result = self.array.update_conductance(
            delta_g, efficiency, with_cycle_noise
        )
        self._reference_factors = None
        return result

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def set_reference_input(self, x_reference: np.ndarray) -> None:
        """Set the input statistics used by the ``'reference'`` model."""
        x_reference = np.asarray(x_reference, dtype=float)
        if x_reference.shape != (self.shape[0],):
            raise ValueError(
                f"x_reference must have shape ({self.shape[0]},)"
            )
        self._reference_input = x_reference
        self._reference_factors = None

    def _get_reference_factors(self) -> np.ndarray:
        """Per-column gain factors of the fast ``'reference'`` model."""
        version = self.array.state_version
        if self._reference_factors is None or self._reference_version != version:
            x_ref = self._reference_input
            if x_ref is None:
                x_ref = np.full(self.shape[0], 0.5)
            self._reference_factors = read_column_gains(
                self.conductance,
                x_ref,
                self.config.r_wire,
                self.config.v_read,
            )
            self._reference_version = version
        return self._reference_factors

    def _resolve_nodal_solver(self) -> str:
        """The active nodal solver: config pin, else the ambient runtime."""
        if self.config.nodal_solver is not None:
            return self.config.nodal_solver
        return current_runtime().nodal_solver

    def set_nodal_solver(self, solver: str | None) -> None:
        """Pin the nodal solver for this crossbar (``None`` = ambient).

        Validated against :data:`~repro.config.NODAL_SOLVERS` by the
        config; takes effect on the next nodal read (cached
        factorisations are per-solver, so switching never refactorises
        the paths already built).
        """
        self.config = dataclasses.replace(self.config, nodal_solver=solver)

    def _get_network(self) -> CrossbarNetwork:
        """Nodal network of the current state, factorisation cached.

        The solve setup (factorisation or preconditioner) is the
        dominant cost of a nodal read; caching it keyed on the
        device-state version means a batch of queries against an
        unchanged programmed state pays for one setup, while any
        reprogramming, drift aging or defect injection transparently
        invalidates it.  The solver selection is re-resolved on every
        call so runtime/config changes apply without a rebuild.
        """
        version = self.array.state_version
        solver = self._resolve_nodal_solver()
        if self._network is None or self._network_version != version:
            self._network = CrossbarNetwork(
                self.conductance, self.config.r_wire, solver=solver
            )
            self._network_version = version
        elif self._network.solver != solver:
            self._network.set_solver(solver)
        return self._network

    def read(
        self,
        x: np.ndarray,
        ir_mode: str = "ideal",
        backend: ArrayBackend | str | None = None,
    ) -> np.ndarray:
        """Sensed bit-line currents for input(s) ``x`` in [0, 1].

        Args:
            x: Input features, shape ``(rows,)`` or batch ``(s, rows)``.
            ir_mode: One of :data:`IR_MODES`.
            backend: Array namespace for the linear read math (default:
                the bit-identical numpy reference path).  The ideal and
                reference models run natively on the backend; the
                wire-solver models (``fixed_point``, ``nodal``) and the
                sensing chain are sparse/host-side code and round-trip
                through numpy, with the result converted back.

        Returns:
            Currents in Ampere, shape ``(cols,)`` or ``(s, cols)``.
        """
        if ir_mode not in IR_MODES:
            raise ValueError(f"ir_mode must be one of {IR_MODES}, got {ir_mode!r}")
        bk = resolve_backend(backend)
        x = bk.asarray(x)
        g = self.conductance
        v_read = self.config.v_read
        if ir_mode == "ideal" or self.config.r_wire == 0:
            currents = v_read * _batch_invariant_matmul(x, bk.asarray(g), xp=bk)
        elif ir_mode == "reference":
            currents = (
                v_read
                * _batch_invariant_matmul(x, bk.asarray(g), xp=bk)
                * bk.asarray(self._get_reference_factors())
            )
        elif ir_mode == "fixed_point":
            currents = bk.asarray(read_output_currents(
                g, bk.to_numpy(x), self.config.r_wire, v_read
            ))
        else:  # nodal
            currents = bk.asarray(
                self._get_network().read_batch(bk.to_numpy(x), v_read)
            )
        if self.sense is not None:
            currents = bk.asarray(self.sense.sense(bk.to_numpy(currents)))
        return currents

    def read_single_cell(
        self, row: int, col: int, v_read: float | None = None
    ) -> float:
        """Pre-test read of one cell (others assumed quiescent).

        Drives only word line ``row`` and senses only bit line ``col``;
        the AMP pre-test keeps all other cells at HRS so sneak currents
        are negligible (Section 4.2.1), making the ideal single-cell
        current the faithful model here.  Sensing-chain effects (noise,
        ADC quantisation) still apply.
        """
        v = v_read if v_read is not None else self.config.v_read
        current = v * self.conductance[row, col]
        if self.sense is not None:
            current = float(self.sense.sense(current))
        return float(current)
