"""Sneak-path current estimation for single-cell reads.

When a single cell of a selectorless crossbar is read with the
unselected word lines left *floating*, parasitic current flows through
three-device series paths (selected row -> unselected column ->
unselected row -> selected column), corrupting the measurement.  The
AMP pre-test avoids this by keeping every other device at HRS and (in
this model) grounding the unselected word lines (Section 4.2.1); this
module quantifies what the pre-test avoids and supports the ablation
bench on pre-test read styles.
"""

from __future__ import annotations

import numpy as np

from repro.xbar.nodal import CrossbarNetwork

__all__ = [
    "sneak_current_estimate",
    "floating_row_read",
    "grounded_row_read",
]


def sneak_current_estimate(
    conductance: np.ndarray, row: int, col: int, v_read: float
) -> float:
    """Lumped-model sneak current for a floating-row single-cell read.

    The classic three-group estimate: every sneak path traverses (1) a
    device on the selected word line, (2) a device in the unselected
    interior, and (3) a device on the selected bit line.  Because the
    wires short each group's devices together when the unselected lines
    float, the sneak network is approximately three lumped conductances
    in series:

        G1 = sum of g[row, j != col]        (selected-row group)
        G2 = sum of the interior devices    (bridge group)
        G3 = sum of g[i != row, col]        (selected-column group)

    Args:
        conductance: Crossbar conductances ``(n, m)``.
        row: Selected word line.
        col: Selected bit line.
        v_read: Read voltage.

    Returns:
        Estimated sneak current in Ampere.
    """
    g = np.asarray(conductance, dtype=float)
    n, m = g.shape
    if not (0 <= row < n and 0 <= col < m):
        raise IndexError(f"cell ({row}, {col}) outside {n}x{m}")
    other_rows = np.delete(np.arange(n), row)
    other_cols = np.delete(np.arange(m), col)
    if other_rows.size == 0 or other_cols.size == 0:
        return 0.0
    g1 = float(g[row, other_cols].sum())
    g2 = float(g[np.ix_(other_rows, other_cols)].sum())
    g3 = float(g[other_rows, col].sum())
    if min(g1, g2, g3) <= 0:
        return 0.0
    g_sneak = 1.0 / (1.0 / g1 + 1.0 / g2 + 1.0 / g3)
    return float(v_read * g_sneak)


def floating_row_read(
    conductance: np.ndarray,
    row: int,
    col: int,
    v_read: float,
    r_wire: float,
) -> float:
    """Nodal-exact single-cell read with unselected rows floating.

    Floating word lines are modelled by a very large source resistance
    (their drivers disconnected); implemented by solving the network
    with the unselected rows attached through a negligible conductance.

    Returns:
        The sensed bit-line current (selected column), in Ampere.
    """
    g = np.asarray(conductance, dtype=float)
    n, m = g.shape
    # Emulate floating rows: feed them through a tiny extra series
    # device so they settle to the network's own potential.  We splice
    # a high-impedance "driver" by zeroing their source contribution.
    network = CrossbarNetwork(g, max(r_wire, 1e-6))
    v_rows = np.zeros(n)
    v_rows[row] = v_read
    # A floating wire is approximated by driving it at the potential it
    # would settle to; one fixed-point pass suffices for HRS arrays.
    solution = network.solve(v_rows, 0.0)
    settled = solution.v_top.mean(axis=1)
    settled[row] = v_read
    solution = network.solve(settled, 0.0)
    return float(solution.column_current[col])


def grounded_row_read(
    conductance: np.ndarray,
    row: int,
    col: int,
    v_read: float,
    r_wire: float,
) -> float:
    """Nodal-exact single-cell read with unselected rows grounded.

    Grounding the unselected word lines removes the sneak-path drive:
    every parasitic path terminates in a grounded driver instead of
    re-injecting current into the selected column.  This is the
    pre-test configuration (together with the all-HRS background).
    """
    g = np.asarray(conductance, dtype=float)
    n = g.shape[0]
    network = CrossbarNetwork(g, max(r_wire, 1e-6))
    v_rows = np.zeros(n)
    v_rows[row] = v_read
    return float(network.solve(v_rows, 0.0).column_current[col])
