"""Structure-exploiting solvers for the crossbar nodal system.

The nodal Laplacian of an ``n x m`` crossbar (:mod:`repro.xbar.nodal`)
is not a generic sparse matrix: ordered top plane then bottom plane it
is the 2x2 block system::

    [ A_t   -G_d ] [ v_t ]   [ b_t ]
    [ -G_d   A_b ] [ v_b ] = [ b_b ]

where ``A_t`` decouples into ``n`` independent *word-line ladders*
(tridiagonal over the ``m`` columns, driven at the left end), ``A_b``
into ``m`` independent *bit-line ladders* (tridiagonal over the ``n``
rows, terminated at the bottom end) -- the same ladder primitive
:mod:`repro.xbar.ir_drop` solves -- and ``G_d = diag(g)`` couples the
planes only through the per-cell memristor conductances.  This module
exploits that structure three ways:

* :class:`SchurFactor` -- eliminate the top plane exactly.  With
  ``W_i = A_t,i^-1 diag(g_i)`` computed per row by O(m) banded solves,
  the Schur complement ``S = A_b - G_d A_t^-1 G_d`` over the bottom
  plane is symmetric positive definite and *banded with bandwidth
  exactly m* in ``i*m + j`` ordering, so a banded Cholesky of the
  reduced ``n*m`` system replaces the generic sparse LU of the
  ``2*n*m`` one.
* :func:`cg_nodal_solve` -- the full system is SPD, so conjugate
  gradients with a matrix-free operator apply
  (:func:`nodal_operator_apply`) solves it iteratively.  Preconditioned
  with a :class:`SchurFactor` of the *nominal* conductance state, one
  factorisation serves every variation draw of a Monte-Carlo chunk:
  trials never refactorise, they only iterate.  Iteration is blocked
  over all trials and right-hand sides at once, with converged systems
  frozen (masked updates) so each system's trajectory -- and therefore
  its result -- is independent of what it is batched with.
* :func:`nodal_read_trial_stack` -- the trial-stacked read kernel the
  Monte-Carlo engine (:func:`repro.runtime.map_trials_batched`) plugs
  in: a ``(T, n, m)`` conductance stack and an input batch go in, the
  ``(T, s, m)`` nodal column currents come out of one blocked solve.

Accuracy contract (tested in ``tests/xbar/test_solvers.py`` and
documented in ``docs/ir_drop.md``): ``"lu"`` (generic ``splu``) is the
bit-exact oracle; ``"schur"`` agrees with it to <= 1e-9 relative error
on column currents; ``"cg"`` runs a fixed, deterministic iteration
(tolerance :data:`CG_TOL` on the relative residual, iteration cap
:data:`CG_MAX_ITER`, no randomness, no adaptive restarts) and agrees to
<= :data:`CG_CURRENT_RTOL` relative error on column currents.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.linalg import cho_solve_banded, cholesky_banded, solve_banded

from repro.config import NODAL_SOLVERS
from repro.xbar.ir_drop import IRDropDecomposition, program_factors

__all__ = [
    "NODAL_SOLVERS",
    "CG_TOL",
    "CG_MAX_ITER",
    "CG_CURRENT_RTOL",
    "SCHUR_RTOL",
    "SchurFactor",
    "CorrectedDecomposition",
    "cg_nodal_solve",
    "fit_decomposed_correction",
    "nodal_operator_apply",
    "nodal_read_trial_stack",
    "validate_solver",
]

#: Relative-residual convergence tolerance of the CG path.  Fixed (not
#: caller-tuned per call site) so a cg solve is a deterministic function
#: of (conductance state, preconditioner state, right-hand side) alone.
CG_TOL = 1e-13

#: Iteration cap of the CG path.  A hard, deterministic bound: the loop
#: never restarts, reorders, or randomises, so two runs of the same
#: system execute the identical instruction stream.
CG_MAX_ITER = 500

#: Documented column-current agreement of the cg path against the lu
#: oracle (relative error; the schur path holds :data:`SCHUR_RTOL`).
CG_CURRENT_RTOL = 1e-8

#: Documented column-current agreement of the schur path against the lu
#: oracle.  The Schur complement is solved by a direct banded Cholesky,
#: so the only slack is floating-point reassociation, not iteration.
SCHUR_RTOL = 1e-9


def validate_solver(solver: str) -> str:
    """Validate a nodal-solver name, returning it for chaining."""
    if solver not in NODAL_SOLVERS:
        raise ValueError(
            f"nodal solver must be one of {NODAL_SOLVERS}, got {solver!r}"
        )
    return solver


# ----------------------------------------------------------------------
# plane structure
# ----------------------------------------------------------------------
def _wire_degrees(n: int, m: int) -> tuple[np.ndarray, np.ndarray]:
    """Wire-conductance multiplicity per node of each plane.

    Returns ``(deg_top, deg_bottom)`` where ``deg_top`` (shape ``(m,)``)
    counts the wire segments incident on column position ``j`` of any
    word line (neighbours plus the left-end driver) and ``deg_bottom``
    (shape ``(n,)``) the segments at row position ``i`` of any bit line
    (neighbours plus the bottom-end termination).
    """
    deg_top = np.zeros(m)
    deg_top[1:] += 1.0
    deg_top[:-1] += 1.0
    deg_top[0] += 1.0
    deg_bottom = np.zeros(n)
    deg_bottom[1:] += 1.0
    deg_bottom[:-1] += 1.0
    deg_bottom[n - 1] += 1.0
    return deg_top, deg_bottom


def nodal_operator_apply(
    g: np.ndarray, r_wire: float, v: np.ndarray
) -> np.ndarray:
    """Matrix-free apply of the nodal Laplacian to plane-shaped vectors.

    Args:
        g: Device conductances, shape ``(n, m)`` or any shape
            broadcastable against ``v``'s trailing ``(n, m)`` axes
            (e.g. a ``(T, 1, n, m)`` trial stack).
        r_wire: Wire segment resistance (> 0).
        v: Node voltages with the planes stacked on axis ``-3``:
            ``v[..., 0, :, :]`` is the top (word-line) plane,
            ``v[..., 1, :, :]`` the bottom (bit-line) plane.

    Returns:
        ``A @ v`` in the same layout.  Every operation is elementwise
        or a shifted-slice add, so each leading-axis system is computed
        independently of its batch mates -- the property the blocked CG
        solver's determinism contract rests on.
    """
    g = np.asarray(g, dtype=float)
    v = np.asarray(v, dtype=float)
    n, m = v.shape[-2:]
    g_w = 1.0 / r_wire
    deg_top, deg_bottom = _wire_degrees(n, m)
    vt = v[..., 0, :, :]
    vb = v[..., 1, :, :]
    out_t = (g + g_w * deg_top) * vt - g * vb
    out_t[..., :, 1:] -= g_w * vt[..., :, :-1]
    out_t[..., :, :-1] -= g_w * vt[..., :, 1:]
    out_b = (g + g_w * deg_bottom[:, None]) * vb - g * vt
    out_b[..., 1:, :] -= g_w * vb[..., :-1, :]
    out_b[..., :-1, :] -= g_w * vb[..., 1:, :]
    return np.stack([out_t, out_b], axis=-3)


# ----------------------------------------------------------------------
# Schur-complement direct solver
# ----------------------------------------------------------------------
class SchurFactor:
    """Banded Cholesky of the bottom-plane Schur complement.

    Eliminating the top plane costs ``n`` tridiagonal solves with ``m``
    right-hand sides each (O(n*m^2) total, reusing the
    :func:`repro.xbar.ir_drop._ladder_banded` primitive with the node
    order reversed, since word lines are driven at their *left* end);
    what remains is an ``n*m`` SPD system whose bandwidth is exactly
    ``m`` -- dense ``m x m`` diagonal blocks from ``G_d A_t^-1 G_d``
    plus the ``-g_w`` bit-line wire band.  For the paper's tall-thin
    crossbars (784 x 10) that reduced banded factorisation is orders of
    magnitude cheaper than a generic sparse LU of the full system.

    Args:
        conductance: Device conductances ``(n, m)``, strictly positive.
        r_wire: Wire segment resistance (> 0).
    """

    def __init__(self, conductance: np.ndarray, r_wire: float):
        g = np.asarray(conductance, dtype=float)
        if g.ndim != 2:
            raise ValueError("conductance must be a 2-D matrix")
        if np.any(g <= 0):
            raise ValueError("conductances must be strictly positive")
        if r_wire <= 0:
            raise ValueError(f"r_wire must be > 0, got {r_wire}")
        self.g = g
        self.n, self.m = g.shape
        self.r_wire = float(r_wire)
        n, m = self.n, self.m
        nm = n * m
        g_w = 1.0 / self.r_wire

        # Word-line ladders in reversed coordinates (_ladder_banded
        # terminates at its *last* node, word lines drive their first),
        # stacked into ONE flat tridiagonal system: the ladders are
        # decoupled, so concatenating their banded storages -- each
        # block's boundary super/sub-diagonal entries are zero -- lets a
        # single solve_banded call answer all n of them at once instead
        # of n Python-dispatched LAPACK calls (cf. _ladder_banded).
        grev = g[:, ::-1]
        ab_flat = np.zeros((3, n, m))
        ab_flat[1] = grev + 2.0 * g_w
        ab_flat[1, :, 0] = grev[:, 0] + g_w
        ab_flat[0, :, 1:] = -g_w
        ab_flat[2, :, :-1] = -g_w
        self._ab_top_flat = ab_flat.reshape(3, nm)
        self._grev = grev

        # Dense diagonal blocks of S = A_b - G_d A_t^-1 G_d.  In the
        # reversed frame M'_i = D' L_i^-1 D'; flipping both axes maps
        # it back to column order.  One blocked solve: RHS column j
        # carries grev[i, j] * e_j for every block i simultaneously.
        rhs_diag = np.zeros((nm, m))
        rhs_diag[np.arange(nm), np.tile(np.arange(m), n)] = grev.ravel()
        y = solve_banded((1, 1), self._ab_top_flat, rhs_diag)
        blocks = (grev[:, :, None] * y.reshape(n, m, m))[:, ::-1, ::-1]
        _, deg_bottom = _wire_degrees(n, m)
        s_diag = g + g_w * deg_bottom[:, None]
        s_blocks = -blocks
        s_blocks[:, np.arange(m), np.arange(m)] += s_diag

        # Lower banded storage: ab[d, k] = S[k + d, k].  Within-block
        # entries come from the dense blocks' sub-diagonals; the only
        # cross-block coupling is the bit-line wire at offset m.
        ab_s = np.zeros((m + 1, n, m))
        for d in range(m):
            ab_s[d, :, : m - d] = np.diagonal(
                s_blocks, offset=-d, axis1=1, axis2=2
            )
        if n > 1:
            ab_s[m, : n - 1, :] = -g_w
        self._cholesky = cholesky_banded(
            ab_s.reshape(m + 1, n * m), lower=True
        )

    def _top_solve(self, b: np.ndarray) -> np.ndarray:
        """``A_t^-1 b`` for ``b`` of shape ``(n, m, k)``.

        One flat banded solve covers all ``n`` decoupled ladders.
        """
        n, m = self.n, self.m
        br = np.ascontiguousarray(b[:, ::-1, :]).reshape(n * m, -1)
        y = solve_banded((1, 1), self._ab_top_flat, br)
        return y.reshape(n, m, -1)[:, ::-1, :]

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve the full ``2*n*m`` nodal system.

        Args:
            rhs: Right-hand side(s), shape ``(2*n*m,)`` or
                ``(2*n*m, k)`` (top-plane entries first, the layout of
                :class:`repro.xbar.nodal.CrossbarNetwork`).

        Returns:
            Node voltages in the same shape.
        """
        rhs = np.asarray(rhs, dtype=float)
        single = rhs.ndim == 1
        b = rhs[:, None] if single else rhs
        n, m = self.n, self.m
        nm = n * m
        if b.shape[0] != 2 * nm:
            raise ValueError(
                f"rhs must have {2 * nm} entries, got {b.shape[0]}"
            )
        b_t = b[:nm].reshape(n, m, -1)
        b_b = b[nm:].reshape(n, m, -1)
        gc = self.g[:, :, None]
        y = self._top_solve(b_t)
        rhs_s = (b_b + gc * y).reshape(nm, -1)
        v_b = cho_solve_banded((self._cholesky, True), rhs_s)
        v_b = v_b.reshape(n, m, -1)
        v_t = self._top_solve(b_t + gc * v_b)
        out = np.concatenate(
            [v_t.reshape(nm, -1), v_b.reshape(nm, -1)], axis=0
        )
        return out[:, 0] if single else out


# ----------------------------------------------------------------------
# preconditioned conjugate gradients
# ----------------------------------------------------------------------
def _system_dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-system inner product over the trailing plane axes.

    Both operands are ``(T, k, 2, n, m)``; the reduction runs over each
    system's own contiguous trailing block, so the value for system
    ``(t, q)`` does not depend on how many other systems share the
    batch -- the accumulation-order requirement of the determinism
    contract (cf. REP009).
    """
    return np.sum(a * b, axis=(-3, -2, -1))


def cg_nodal_solve(
    g_stack: np.ndarray,
    rhs: np.ndarray,
    r_wire: float,
    precond: SchurFactor,
    tol: float = CG_TOL,
    max_iter: int = CG_MAX_ITER,
) -> tuple[np.ndarray, int]:
    """Blocked preconditioned CG over a stack of conductance states.

    Solves ``A(g_stack[t]) x = rhs[t]`` for every trial ``t`` and every
    right-hand-side column jointly: one :func:`nodal_operator_apply`
    and one preconditioner application per iteration cover the whole
    ``T x k`` block.  The preconditioner is a single
    :class:`SchurFactor` -- typically of the *nominal* conductance
    state -- shared by every trial, which is what removes the
    per-trial factorisation from Monte-Carlo sweeps entirely.

    Determinism: iterations run in a fixed order with a fixed cap;
    converged systems are frozen (their step sizes are masked to zero)
    rather than removed, so each system's iterate sequence is a pure
    function of its own ``(g, rhs)`` and the preconditioner state --
    independent of chunking, batching, or ``--jobs``.

    Args:
        g_stack: Conductance states, shape ``(T, n, m)``.
        rhs: Right-hand sides, shape ``(T, 2*n*m, k)``.
        r_wire: Wire segment resistance (> 0).
        precond: Factorisation applied as the preconditioner.
        tol: Relative-residual convergence tolerance.
        max_iter: Hard iteration cap.

    Returns:
        ``(x, iterations)``: solutions shaped like ``rhs`` and the
        number of blocked iterations executed.
    """
    g_stack = np.asarray(g_stack, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    if g_stack.ndim != 3:
        raise ValueError(
            f"g_stack must be (T, n, m), got shape {g_stack.shape}"
        )
    t_count, n, m = g_stack.shape
    size = 2 * n * m
    if rhs.ndim != 3 or rhs.shape[0] != t_count or rhs.shape[1] != size:
        raise ValueError(
            f"rhs must be ({t_count}, {size}, k), got shape {rhs.shape}"
        )
    if (precond.n, precond.m) != (n, m):
        raise ValueError(
            f"preconditioner geometry {(precond.n, precond.m)} != "
            f"system geometry {(n, m)}"
        )
    k = rhs.shape[2]
    b = np.transpose(rhs, (0, 2, 1)).reshape(t_count, k, 2, n, m)
    gb = g_stack[:, None, :, :]

    def apply_precond(r: np.ndarray) -> np.ndarray:
        flat = r.reshape(t_count * k, size).T
        return precond.solve(flat).T.reshape(t_count, k, 2, n, m)

    x = np.zeros_like(b)
    r = b.copy()
    b_norm_sq = _system_dot(b, b)
    threshold = (tol * tol) * b_norm_sq
    z = apply_precond(r)
    p = z.copy()
    rz = _system_dot(r, z)
    iterations = 0
    for _ in range(max_iter):
        active = _system_dot(r, r) > threshold
        if not active.any():
            break
        iterations += 1
        ap = nodal_operator_apply(gb, r_wire, p)
        pap = _system_dot(p, ap)
        live = active & (pap > 0)
        alpha = np.where(live, rz / np.where(pap > 0, pap, 1.0), 0.0)
        step = alpha[:, :, None, None, None]
        x = x + step * p
        r = r - step * ap
        z = apply_precond(r)
        rz_new = _system_dot(r, z)
        beta = np.where(live, rz_new / np.where(rz != 0, rz, 1.0), 0.0)
        p = z + beta[:, :, None, None, None] * p
        rz = rz_new
    out = np.transpose(x.reshape(t_count, k, size), (0, 2, 1))
    return out, iterations


# ----------------------------------------------------------------------
# trial-stacked Monte-Carlo read kernel
# ----------------------------------------------------------------------
def _read_rhs_stack(
    x: np.ndarray, t_count: int, n: int, m: int, g_w: float, v_read: float
) -> np.ndarray:
    """Read-mode right-hand sides ``(T, 2*n*m, s)`` for inputs ``x``."""
    rhs = np.zeros((t_count, 2 * n * m, x.shape[0]))
    left = np.arange(n) * m
    rhs[:, left, :] = (v_read * g_w) * x.T[None, :, :]
    return rhs


def _nodal_read_trial_stack_host(
    g_stack: np.ndarray,
    x: np.ndarray,
    r_wire: float,
    v_read: float,
    solver: str,
    precond_g: np.ndarray | None,
    tol: float,
    max_iter: int,
) -> np.ndarray:
    """Numpy implementation behind :func:`nodal_read_trial_stack`."""
    g_stack = np.asarray(g_stack, dtype=float)
    if g_stack.ndim != 3:
        raise ValueError(
            f"g_stack must be (T, n, m), got shape {g_stack.shape}"
        )
    if np.any(g_stack <= 0):
        raise ValueError("conductances must be strictly positive")
    if r_wire <= 0:
        raise ValueError(f"r_wire must be > 0, got {r_wire}")
    t_count, n, m = g_stack.shape
    x = np.atleast_2d(np.asarray(x, dtype=float))
    if x.shape[1] != n:
        raise ValueError(
            f"inputs must have {n} features, got {x.shape[1]}"
        )
    g_w = 1.0 / r_wire
    nm = n * m
    bottom_row = slice(nm + (n - 1) * m, nm + n * m)
    if solver == "cg":
        if precond_g is None:
            precond_g = np.mean(g_stack, axis=0)
        precond = SchurFactor(precond_g, r_wire)
        rhs = _read_rhs_stack(x, t_count, n, m, g_w, v_read)
        v, _ = cg_nodal_solve(
            g_stack, rhs, r_wire, precond, tol=tol, max_iter=max_iter
        )
        # Bit lines are virtually grounded during reads.
        return np.transpose(v[:, bottom_row, :], (0, 2, 1)) * g_w
    if solver == "schur":
        rhs = _read_rhs_stack(x, 1, n, m, g_w, v_read)[0]
        out = np.empty((t_count, x.shape[0], m))
        for t in range(t_count):
            v = SchurFactor(g_stack[t], r_wire).solve(rhs)
            out[t] = v[bottom_row, :].T * g_w
        return out
    raise ValueError(
        "trial-stacked reads support solver 'cg' or 'schur'; for the "
        f"'lu' oracle use CrossbarNetwork per trial (got {solver!r})"
    )


def nodal_read_trial_stack(
    g_stack,
    x,
    r_wire: float,
    v_read: float = 1.0,
    solver: str = "cg",
    precond_g=None,
    tol: float = CG_TOL,
    max_iter: int = CG_MAX_ITER,
    backend=None,
):
    """Nodal column currents for a whole stack of conductance trials.

    The Monte-Carlo nodal kernel: instead of factorising per trial,
    all ``T`` trials and ``s`` read inputs are solved as one blocked
    multi-right-hand-side problem (``solver="cg"``, preconditioned by
    one :class:`SchurFactor` of ``precond_g`` -- pass the nominal,
    pre-variation conductance state; trial mean when ``None``) or as
    ``T`` reduced banded factorisations (``solver="schur"``).

    The kernel is backend-aware (see :mod:`repro.backend`): operands
    are converted at the host boundary, the sparse solves run host-side
    (scipy), and the currents are returned on ``backend``.

    Args:
        g_stack: Trial conductances, shape ``(T, n, m)``.
        x: Read inputs in [0, 1], shape ``(s, n)`` (or ``(n,)``).
        r_wire: Wire segment resistance (> 0).
        v_read: Read voltage scale.
        solver: ``"cg"`` or ``"schur"``.
        precond_g: Nominal conductance state for the shared cg
            preconditioner (ignored by ``"schur"``).
        tol: CG relative-residual tolerance.
        max_iter: CG iteration cap.
        backend: Array namespace of the returned currents.

    Returns:
        Column currents, shape ``(T, s, m)``.
    """
    from repro.backend import resolve_backend

    bk = resolve_backend(backend)
    currents = _nodal_read_trial_stack_host(
        bk.to_numpy(bk.asarray(g_stack)),
        bk.to_numpy(bk.asarray(x)),
        r_wire,
        v_read,
        solver,
        None if precond_g is None else bk.to_numpy(bk.asarray(precond_g)),
        tol,
        max_iter,
    )
    return bk.asarray(currents)


# ----------------------------------------------------------------------
# fitted correction of the decomposed beta/D fast model
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class CorrectedDecomposition:
    """A beta/D decomposition with a per-geometry fitted correction.

    The paper's decomposition (:func:`repro.xbar.ir_drop.program_factors`)
    is first-order: it composes the exact 1-D ladder solutions and
    under- or over-states the 2-D coupling by a geometry-dependent
    amount.  Fitting a single drop-scale ``gain`` against the exact
    nodal solver on a deterministic sample of cells recovers most of
    that gap at decomposed cost, so large sweeps can run near-reference
    accuracy without per-state nodal solves.

    Attributes:
        base: The uncorrected decomposition.
        gain: Fitted scale on the modelled voltage *drop*:
            ``corrected = 1 - gain * (1 - base.combined)``.
        combined: Corrected per-cell delivered-voltage factors,
            clipped to (0, 1].
        sample_cells: The ``(row, col)`` cells the fit was anchored on.
        raw_error: Max relative factor error of ``base.combined``
            against the exact solver on the sample cells.
        fitted_error: Same measure for the corrected factors.
    """

    base: IRDropDecomposition
    gain: float
    combined: np.ndarray
    sample_cells: tuple[tuple[int, int], ...]
    raw_error: float
    fitted_error: float


def _sample_cells(n: int, m: int, samples: int) -> list[tuple[int, int]]:
    """A deterministic cell grid covering corners, edges and interior."""
    side = max(2, int(round(float(samples) ** 0.5)))
    rows = np.unique(np.linspace(0, n - 1, side).round().astype(int))
    cols = np.unique(np.linspace(0, m - 1, side).round().astype(int))
    return [(int(r), int(c)) for r in rows for c in cols]


def fit_decomposed_correction(
    conductance: np.ndarray,
    r_wire: float,
    v_prog: float,
    samples: int = 16,
) -> CorrectedDecomposition:
    """Fit the decomposed model's drop scale against the exact solver.

    Computes the exact delivered-voltage factors on a deterministic
    sample of cells (one multi-right-hand-side :class:`SchurFactor`
    solve of the V/2 scheme -- the exact solver, not the fast model)
    and least-squares fits the scalar ``gain`` minimising
    ``|exact_drop - gain * modelled_drop|`` over the sample.

    Args:
        conductance: Crossbar conductances ``(n, m)``.
        r_wire: Wire segment resistance (> 0).
        v_prog: Nominal programming voltage.
        samples: Approximate number of anchor cells (gridded over the
            geometry; corners always included).

    Returns:
        A :class:`CorrectedDecomposition`.
    """
    g = np.asarray(conductance, dtype=float)
    n, m = g.shape
    base = program_factors(g, r_wire, v_prog)
    cells = _sample_cells(n, m, samples)
    g_w = 1.0 / r_wire
    nm = n * m

    # Exact V/2-scheme solves, one right-hand side per sampled cell.
    rhs = np.zeros((2 * nm, len(cells)))
    half = v_prog / 2.0
    left = np.arange(n) * m
    bottom = nm + (n - 1) * m + np.arange(m)
    for idx, (row, col) in enumerate(cells):
        v_rows = np.full(n, half)
        v_rows[row] = v_prog
        v_cols = np.full(m, half)
        v_cols[col] = 0.0
        rhs[left, idx] = v_rows * g_w
        rhs[bottom, idx] += v_cols * g_w
    v = SchurFactor(g, r_wire).solve(rhs)
    exact = np.empty(len(cells))
    for idx, (row, col) in enumerate(cells):
        node = row * m + col
        exact[idx] = (v[node, idx] - v[nm + node, idx]) / v_prog

    modelled = np.array([base.combined[r, c] for r, c in cells])
    exact_drop = 1.0 - exact
    model_drop = 1.0 - modelled
    denom = float(np.dot(model_drop, model_drop))
    gain = float(np.dot(model_drop, exact_drop)) / denom if denom > 0 else 1.0
    corrected = np.clip(1.0 - gain * (1.0 - base.combined), 1e-9, 1.0)

    raw_error = float(np.max(np.abs(modelled - exact) / exact))
    fitted = np.array([corrected[r, c] for r, c in cells])
    fitted_error = float(np.max(np.abs(fitted - exact) / exact))
    return CorrectedDecomposition(
        base=base,
        gain=gain,
        combined=corrected,
        sample_cells=tuple(cells),
        raw_error=raw_error,
        fitted_error=fitted_error,
    )
