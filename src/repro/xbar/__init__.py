"""Crossbar circuit substrate.

The crossbar array, differential pair, IR-drop models (fast ladder
decomposition and full nodal analysis), V/2 pulse planning, sneak-path
estimation, and weight <-> conductance mapping.
"""

from repro.xbar.crossbar import IR_MODES, Crossbar
from repro.xbar.ir_drop import (
    IRDropDecomposition,
    column_ladder_solve,
    program_column_factors,
    program_factors,
    program_row_factors,
    read_attenuation_reference,
    read_column_gains,
    read_output_currents,
)
from repro.xbar.mapping import WeightScaler, split_signed
from repro.xbar.nodal import CrossbarNetwork, NodalSolution
from repro.xbar.pair import DifferentialCrossbar
from repro.xbar.programming import PulsePlan, execute_plan, plan_programming
from repro.xbar.sneak import (
    floating_row_read,
    grounded_row_read,
    sneak_current_estimate,
)
from repro.xbar.solvers import (
    CG_CURRENT_RTOL,
    SCHUR_RTOL,
    CorrectedDecomposition,
    SchurFactor,
    cg_nodal_solve,
    fit_decomposed_correction,
    nodal_operator_apply,
    nodal_read_trial_stack,
)
from repro.xbar.tiling import TiledPair, split_rows

__all__ = [
    "CG_CURRENT_RTOL",
    "IR_MODES",
    "SCHUR_RTOL",
    "Crossbar",
    "CrossbarNetwork",
    "CorrectedDecomposition",
    "DifferentialCrossbar",
    "IRDropDecomposition",
    "NodalSolution",
    "PulsePlan",
    "SchurFactor",
    "TiledPair",
    "WeightScaler",
    "cg_nodal_solve",
    "column_ladder_solve",
    "fit_decomposed_correction",
    "nodal_operator_apply",
    "nodal_read_trial_stack",
    "execute_plan",
    "floating_row_read",
    "grounded_row_read",
    "plan_programming",
    "program_column_factors",
    "program_factors",
    "program_row_factors",
    "read_attenuation_reference",
    "read_column_gains",
    "read_output_currents",
    "sneak_current_estimate",
    "split_rows",
    "split_signed",
]
