"""Weight <-> conductance mapping for differential crossbar pairs.

A neural-network weight matrix has signed entries, but memristor
conductances are positive, so the paper represents ``W`` with two
crossbars holding the magnitudes of the positive and negative parts
(Section 2.2.1, citing Hu et al.).  ``WeightScaler`` owns the affine
map between weight magnitude and conductance:

    g = g_off + (|w| / w_max) * (g_on - g_off)

and its inverse.  Keeping the map in one object guarantees that
programming targets and read-back interpretation stay consistent.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.config import DeviceConfig

__all__ = ["WeightScaler", "split_signed"]


def split_signed(weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a signed matrix into (positive part, negative-part magnitude)."""
    w = np.asarray(weights, dtype=float)
    return np.maximum(w, 0.0), np.maximum(-w, 0.0)


class WeightScaler:
    """Affine mapping between weight magnitudes and conductances.

    Args:
        w_max: Weight magnitude that maps to full conductance ``g_on``.
            Weights beyond ``w_max`` are clipped at programming time.
        device: Device parameters supplying the conductance range.
        write_levels: Number of programmable conductance levels per
            device (multi-level-cell operation, as in the paper's
            device reference [14]).  0 or ``None`` means continuous
            analog programming; otherwise targets snap to the nearest
            of ``write_levels`` uniform levels across
            ``[g_off, g_on]``.
    """

    def __init__(
        self,
        w_max: float,
        device: DeviceConfig | None = None,
        write_levels: int | None = None,
    ):
        if w_max <= 0:
            raise ValueError(f"w_max must be positive, got {w_max}")
        if write_levels is not None and write_levels < 2 and write_levels != 0:
            raise ValueError(
                f"write_levels must be >= 2 (or 0/None), got {write_levels}"
            )
        self.w_max = float(w_max)
        self.device = device if device is not None else DeviceConfig()
        self.write_levels = int(write_levels) if write_levels else 0

    @classmethod
    def for_weights(
        cls,
        weights: np.ndarray,
        device: DeviceConfig | None = None,
        headroom: float = 1.0,
    ) -> "WeightScaler":
        """Scaler sized to a concrete weight matrix.

        Args:
            weights: The matrix whose largest magnitude sets ``w_max``.
            device: Device parameters.
            headroom: Multiplier > 1 leaves programming headroom so that
                positive variation draws do not saturate at ``g_on``.
        """
        w_max = float(np.max(np.abs(weights)))
        if w_max == 0:
            w_max = 1.0
        return cls(w_max * headroom, device)

    # ------------------------------------------------------------------
    def magnitude_to_conductance(self, magnitude: np.ndarray) -> np.ndarray:
        """Conductance targets for non-negative weight magnitudes.

        With ``write_levels`` set, targets snap to the device's
        discrete programmable levels.
        """
        mag = np.asarray(magnitude, dtype=float)
        if np.any(mag < 0):
            raise ValueError("magnitudes must be non-negative")
        d = self.device
        frac = np.clip(mag / self.w_max, 0.0, 1.0)
        if self.write_levels:
            step = 1.0 / (self.write_levels - 1)
            frac = np.round(frac / step) * step
        return d.g_off + frac * d.g_range

    def conductance_to_magnitude(self, conductance: np.ndarray) -> np.ndarray:
        """Weight magnitudes represented by conductances."""
        d = self.device
        g = np.asarray(conductance, dtype=float)
        return (g - d.g_off) / d.g_range * self.w_max

    # ------------------------------------------------------------------
    def weights_to_pair(
        self, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Conductance targets for the positive and negative crossbars."""
        pos, neg = split_signed(weights)
        return (
            self.magnitude_to_conductance(pos),
            self.magnitude_to_conductance(neg),
        )

    def pair_to_weights(
        self, g_pos: np.ndarray, g_neg: np.ndarray
    ) -> np.ndarray:
        """Effective signed weights realised by a conductance pair."""
        return self.conductance_to_magnitude(
            np.asarray(g_pos, dtype=float)
        ) - self.conductance_to_magnitude(np.asarray(g_neg, dtype=float))

    def currents_to_outputs(
        self,
        i_pos: np.ndarray,
        i_neg: np.ndarray,
        v_read: float,
        xp: ArrayBackend | str | None = None,
    ) -> np.ndarray:
        """Convert differential currents back to weight-domain outputs.

        Inverts the read chain ``I = v_read * x @ G``: the differential
        current divided by ``v_read * g_range / w_max`` recovers
        ``x @ W`` up to the offset cancelled by the differential pair.
        ``xp`` selects the array namespace (default numpy).
        """
        bk = resolve_backend(xp)
        d = self.device
        scale = v_read * d.g_range / self.w_max
        return (bk.asarray(i_pos) - bk.asarray(i_neg)) / scale
