"""Regenerate the numpy-path golden outputs for the backend refactor.

The backend-parity suite (``tests/backend/test_golden.py``) pins the
numpy reference path to the exact values the pre-refactor kernels
produced.  This script reproduces that capture: it exercises forward
reads, the batched Monte-Carlo evaluator, the stacked variation
samplers and a programmed-artifact inference pass at fixed seeds, and
writes the results to ``tests/backend/golden_pre_refactor.npz``.

It must only be re-run when a PR *intentionally* changes reference
numerics (and says so); the whole point of the file is that routine
refactors cannot.

Usage::

    PYTHONPATH=src python scripts/make_backend_golden.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent
    / "tests" / "backend" / "golden_pre_refactor.npz"
)


def capture() -> dict[str, np.ndarray]:
    import functools

    from repro.config import CrossbarConfig, VariationConfig
    from repro.core.base import (
        HardwareSpec,
        batched_hardware_test_rates,
        build_pair,
    )
    from repro.analysis.lognormal import stacked_standard_thetas
    from repro.experiments.fig2_column import (
        ColumnTrialConfig,
        _column_trial_batch,
    )
    from repro.runtime.executor import map_trials_batched, trial_rng
    from repro.serve.artifact import ProgramConfig, program_array
    from repro.serve.engine import InferenceEngine
    from repro.xbar.mapping import WeightScaler
    from repro.xbar.tiling import TiledPair

    out: dict[str, np.ndarray] = {}
    rng = np.random.default_rng(20260808)

    # -- forward reads: differential pair, ideal + reference ----------
    spec = HardwareSpec(
        variation=VariationConfig(sigma=0.4),
        crossbar=CrossbarConfig(rows=24, cols=6, r_wire=0.0),
        ir_mode="ideal",
    )
    scaler = WeightScaler(1.0, spec.device)
    pair = build_pair(spec, scaler, np.random.default_rng(11))
    weights = rng.normal(0.0, 0.4, size=(24, 6))
    pair.program_weights(weights)
    x = rng.random((9, 24))
    pair.calibrate_sense(x)
    out["pair_x"] = x
    out["pair_matvec_ideal"] = pair.matvec(x, "ideal")
    pair.set_reference_input(x.mean(axis=0))
    out["pair_matvec_reference"] = pair.matvec(x, "reference")
    out["pair_read_pos_ideal"] = pair.positive.read(x, "ideal")

    # -- tiled partial reductions -------------------------------------
    tiled = TiledPair(
        scaler, n_rows=30, cols=5, tile_rows=8,
        variation=VariationConfig(sigma=0.3),
        rng=np.random.default_rng(5),
    )
    w_tiled = rng.normal(0.0, 0.3, size=(30, 5))
    tiled.program_weights(w_tiled)
    xt = rng.random((7, 30))
    out["tiled_x"] = xt
    out["tiled_matvec"] = tiled.matvec(xt, "ideal")

    # -- batched hardware test rates ----------------------------------
    T = 5
    g_lo = spec.device.g_off
    g_hi = spec.device.g_on
    g_pos = rng.uniform(g_lo, g_hi, size=(T, 24, 6))
    g_neg = rng.uniform(g_lo, g_hi, size=(T, 24, 6))
    labels = rng.integers(0, 6, size=9)
    out["rates_labels"] = labels
    out["rates"] = batched_hardware_test_rates(
        g_pos, g_neg, x, labels, spec, scaler, trial_block=2
    )

    # -- stacked variation draws --------------------------------------
    rngs = [trial_rng(777, i) for i in range(4)]
    out["stacked_thetas"] = stacked_standard_thetas(
        rngs, "lognormal", (6, 3)
    )

    # -- trial-batched Monte-Carlo kernel -----------------------------
    cfg = ColumnTrialConfig(
        sigma=0.5, n_devices=40, target_current=1e-3, v_read=1.0,
        adc_bits=6, cld_iterations=30,
    )
    out["mc_batched"] = map_trials_batched(
        functools.partial(_column_trial_batch, cfg=cfg),
        trials=12, seed=99, jobs=1,
    )

    # -- programmed-artifact serving pass -----------------------------
    artifact = program_array(
        ProgramConfig(
            scheme="vortex", image_size=7, n_train=80, sigma=0.3,
            seed=3, n_probes=8,
        )
    )
    engine = InferenceEngine.from_artifact(artifact)
    xs = np.random.default_rng(21).random((5, artifact.n_logical))
    out["serve_x"] = xs
    out["serve_scores"] = engine.forward(xs)
    return out


def main() -> None:
    arrays = capture()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(GOLDEN_PATH, **arrays)
    print(f"wrote {GOLDEN_PATH} ({GOLDEN_PATH.stat().st_size} bytes)")
    for name, value in arrays.items():
        print(f"  {name}: shape={value.shape} dtype={value.dtype}")


if __name__ == "__main__":
    main()
